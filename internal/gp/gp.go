// Package gp implements Gaussian process regression (GPR) with marginal
// likelihood hyperparameter optimization, the surrogate model the paper
// trains incrementally for the cost and memory responses (paper §III).
//
// The model is
//
//	y = f(x) + N(0, σ_n²),   f ~ GP(0, k)
//
// with posterior predictive mean and variance at x_* (paper eq. 2–3)
//
//	μ_* = k_*ᵀ K_y⁻¹ y
//	σ_*² = k_** − k_*ᵀ K_y⁻¹ k_*,   K_y = K + σ_n² I
//
// Hyperparameters (kernel parameters and log σ_n) are chosen by maximizing
// the log marginal likelihood (paper eq. 8–9) with analytic gradients and a
// warm-started multi-restart L-BFGS, mirroring the role scikit-learn 0.18's
// GaussianProcessRegressor plays in the original study.
package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"alamr/internal/kernel"
	"alamr/internal/mat"
	"alamr/internal/obs"
	"alamr/internal/optimize"
)

// Config controls fitting.
type Config struct {
	// Noise is the initial noise standard deviation σ_n (default 0.1).
	Noise float64
	// FixedNoise freezes σ_n at its initial value instead of optimizing it.
	FixedNoise bool
	// Restarts is the number of random hyperparameter restarts in addition
	// to the warm start (default 2).
	Restarts int
	// NoOptimize skips hyperparameter optimization entirely and keeps the
	// kernel's current parameters (useful for tests and ablations).
	NoOptimize bool
	// NormalizeY subtracts the training-target mean before fitting and adds
	// it back at prediction time. Recommended for responses with a large
	// offset, such as log-transformed costs.
	NormalizeY bool
	// Seed drives the random restarts. Fits are deterministic given a seed.
	Seed int64
	// MaxIter bounds the L-BFGS iterations per restart (default 100).
	MaxIter int
	// ParamBounds clamps the log-space search region for restarts
	// (default ±5 around 0).
	LowerBound, UpperBound float64
}

func (c *Config) setDefaults() {
	if c.Noise <= 0 {
		c.Noise = 0.1
	}
	if c.Restarts < 0 {
		c.Restarts = 0
	} else if c.Restarts == 0 {
		c.Restarts = 2
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.LowerBound == 0 && c.UpperBound == 0 {
		c.LowerBound, c.UpperBound = -5, 5
	}
}

// GP is a Gaussian process regressor. Create one with New, then call Fit.
type GP struct {
	kern     kernel.Kernel
	cfg      Config
	logNoise float64

	x      *mat.Dense
	y      []float64 // centred targets
	yMean  float64
	chol   *mat.Cholesky
	alpha  []float64
	lml    float64
	fitted bool

	// rowEval is the kernel-row fast path over the current training matrix
	// and hyperparameters: it evaluates a full row of k(x, ·) with hoisted
	// hyperparameter transforms and precomputed squared norms. precompute
	// rebuilds it (hyperparameters may have changed); Append grows it by one
	// row in O(d).
	rowEval kernel.RowEval

	// caches are the attached incremental scoring caches; precompute marks
	// them stale (new hyperparameters invalidate every stored solve) and
	// Append extends them by one border step.
	caches []*ScoringCache
}

// New creates a GP with the given kernel prototype and configuration. The
// kernel is cloned; the caller's copy is never mutated.
func New(k kernel.Kernel, cfg Config) *GP {
	cfg.setDefaults()
	return &GP{
		kern:     k.Clone(),
		cfg:      cfg,
		logNoise: math.Log(cfg.Noise),
	}
}

// Kernel returns the GP's kernel (with fitted hyperparameters after Fit).
// Callers must not mutate it.
func (g *GP) Kernel() kernel.Kernel { return g.kern }

// NoiseStd returns the current noise standard deviation σ_n.
func (g *GP) NoiseStd() float64 { return math.Exp(g.logNoise) }

// LogMarginalLikelihood returns the LML at the fitted hyperparameters.
func (g *GP) LogMarginalLikelihood() float64 {
	if !g.fitted {
		panic("gp: LogMarginalLikelihood before Fit")
	}
	return g.lml
}

// SetRestarts adjusts how many random restarts subsequent hyperparameter
// optimizations perform in addition to the warm start (0 disables them).
func (g *GP) SetRestarts(n int) {
	if n < 0 {
		n = 0
	}
	g.cfg.Restarts = n
}

// NumTrain reports the number of training samples.
func (g *GP) NumTrain() int {
	if g.x == nil {
		return 0
	}
	return g.x.Rows()
}

// Hyperparams returns the full log-space hyperparameter vector
// (kernel params followed by log σ_n).
func (g *GP) Hyperparams() []float64 {
	p := g.kern.Params()
	return append(p, g.logNoise)
}

// SetHyperparams installs a log-space hyperparameter vector of the form
// returned by Hyperparams.
func (g *GP) SetHyperparams(p []float64) {
	want := g.kern.NumParams() + 1
	if len(p) != want {
		panic(fmt.Sprintf("gp: SetHyperparams got %d params, want %d", len(p), want))
	}
	g.kern.SetParams(p[:want-1])
	g.logNoise = p[want-1]
	g.fitted = false
}

// ErrNoData is returned by Fit when the training set is empty.
var ErrNoData = errors.New("gp: empty training set")

// Fit trains the GP on (x, y): optimizes hyperparameters by LML ascent
// (unless cfg.NoOptimize) and precomputes the posterior. The current
// hyperparameters are always used as the warm start, which implements the
// paper's "use old model's parameters as a starting point" refitting note
// (Algorithm 1).
func (g *GP) Fit(x *mat.Dense, y []float64) error {
	if x == nil || x.Rows() == 0 {
		return ErrNoData
	}
	if x.Rows() != len(y) {
		return fmt.Errorf("gp: x has %d rows but y has %d values", x.Rows(), len(y))
	}
	if !mat.AllFinite(y) {
		return errors.New("gp: non-finite training targets")
	}

	g.x = x.Clone()
	g.yMean = 0
	if g.cfg.NormalizeY {
		g.yMean = mat.SumVec(y) / float64(len(y))
	}
	g.y = make([]float64, len(y))
	for i, v := range y {
		g.y[i] = v - g.yMean
	}

	if !g.cfg.NoOptimize && len(y) >= 2 {
		g.optimizeHyperparams()
	}
	return g.precompute()
}

// nlmlObjective builds the negative-LML objective over the log-space
// hyperparameter vector θ = (kernel params..., log σ_n). When noise is
// fixed, the last component is omitted.
func (g *GP) nlmlObjective() optimize.Objective {
	nk := g.kern.NumParams()
	k := g.kern.Clone()
	return func(theta []float64) (float64, []float64) {
		k.SetParams(theta[:nk])
		logNoise := g.logNoise
		if !g.cfg.FixedNoise {
			logNoise = theta[nk]
		}
		lml, grad, err := logMarginalLikelihood(k, logNoise, g.x, g.y, !g.cfg.FixedNoise)
		if err != nil {
			// Non-PD covariance at these hyperparameters: treat as a cliff.
			bad := make([]float64, len(theta))
			return math.Inf(1), bad
		}
		neg := make([]float64, len(theta))
		for i := range grad {
			neg[i] = -grad[i]
		}
		return -lml, neg
	}
}

func (g *GP) optimizeHyperparams() {
	nk := g.kern.NumParams()
	dim := nk
	if !g.cfg.FixedNoise {
		dim++
	}
	warm := make([]float64, dim)
	copy(warm, g.kern.Params())
	if !g.cfg.FixedNoise {
		warm[nk] = g.logNoise
	}

	lower := make([]float64, dim)
	upper := make([]float64, dim)
	for i := range lower {
		lower[i] = g.cfg.LowerBound
		upper[i] = g.cfg.UpperBound
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	res := optimize.MultiStart(g.nlmlObjective(), [][]float64{warm}, optimize.MultiStartConfig{
		Restarts:   g.cfg.Restarts,
		Lower:      lower,
		Upper:      upper,
		LBFGS:      optimize.LBFGSConfig{MaxIter: g.cfg.MaxIter, GradTol: 1e-5},
		FallbackNM: true,
	}, rng)
	if res.X != nil && mat.AllFinite(res.X) && !math.IsInf(res.F, 0) {
		g.kern.SetParams(res.X[:nk])
		if !g.cfg.FixedNoise {
			g.logNoise = res.X[nk]
		}
	}
}

// precompute factorizes K_y and solves for α at the current hyperparameters.
func (g *GP) precompute() error {
	ky := kernel.Gram(g.kern, g.x)
	noise2 := math.Exp(2 * g.logNoise)
	ky.AddDiag(noise2)
	ch, err := mat.NewCholeskyJitter(ky, 1e-10, 1e-4)
	if err != nil {
		return fmt.Errorf("gp: covariance factorization failed: %w", err)
	}
	g.chol = ch
	g.alpha = ch.SolveVec(g.y)
	g.rowEval = kernel.NewRowEval(g.kern, g.x)
	n := float64(len(g.y))
	g.lml = -0.5*mat.Dot(g.y, g.alpha) - 0.5*ch.LogDet() - 0.5*n*math.Log(2*math.Pi)
	g.fitted = true
	obs.GPRebuilds.Inc()
	obs.GPTrainRows.Set(n)
	for _, c := range g.caches {
		c.invalidate()
	}
	return nil
}

// Predict returns the posterior mean and standard deviation of the latent
// function at each row of xs. Variances are clamped at zero before the
// square root, the standard guard against roundoff. Test points are
// independent and are evaluated in parallel; each point's result is
// computed in full by one goroutine, so the output does not depend on the
// worker count.
func (g *GP) Predict(xs *mat.Dense) (mean, std []float64) {
	m := xs.Rows()
	mean = make([]float64, m)
	std = make([]float64, m)
	g.PredictInto(xs, mean, std)
	return mean, std
}

// PredictInto is Predict writing into caller-owned buffers, the
// zero-allocation form streamed pool scoring loops over (keeps the live
// set at one shard rather than the whole pool).
func (g *GP) PredictInto(xs *mat.Dense, mean, std []float64) {
	if !g.fitted {
		panic("gp: Predict before Fit")
	}
	m := xs.Rows()
	if len(mean) != m || len(std) != m {
		panic(fmt.Sprintf("gp: PredictInto buffers %d/%d for %d rows", len(mean), len(std), m))
	}
	n := g.x.Rows()
	mat.ParallelFor(m, mat.ChunkFor(n*n/2+32*n), func(lo, hi int) {
		g.predictRange(xs, mean, std, lo, hi)
	})
}

// predictRange scores rows [lo, hi) with one scratch pair for the whole
// range: predictOneInto reuses it for every point, so the hot path
// allocates nothing per candidate. Model state is read-only here and the
// scratch is call-local, so any number of predictRange calls (and through
// them PredictInto / PredictIntoSerial calls) may run concurrently on one
// fitted model.
func (g *GP) predictRange(xs *mat.Dense, mean, std []float64, lo, hi int) {
	n := g.x.Rows()
	scratch := make([]float64, 2*n)
	ks, v := scratch[:n], scratch[n:]
	for i := lo; i < hi; i++ {
		mean[i], std[i] = g.predictOneInto(xs.Row(i), ks, v)
	}
}

// PredictIntoSerial is PredictInto pinned to the calling goroutine: no
// worker-pool dispatch, identical per-candidate arithmetic, so its output
// is bitwise-equal to PredictInto's. It exists for callers that are
// themselves one lane of a higher-level parallel dispatch (the engine's
// shard workers), where nested fan-out would only add scheduling churn.
// Safe for concurrent use on a fitted model: prediction reads model state
// only (Fit/Append/Refit must not overlap, same contract as Predict).
func (g *GP) PredictIntoSerial(xs *mat.Dense, mean, std []float64) {
	if !g.fitted {
		panic("gp: Predict before Fit")
	}
	m := xs.Rows()
	if len(mean) != m || len(std) != m {
		panic(fmt.Sprintf("gp: PredictIntoSerial buffers %d/%d for %d rows", len(mean), len(std), m))
	}
	g.predictRange(xs, mean, std, 0, m)
}

// PredictOne returns the posterior mean and standard deviation at a single
// point.
func (g *GP) PredictOne(x []float64) (mean, std float64) {
	if !g.fitted {
		panic("gp: PredictOne before Fit")
	}
	n := g.x.Rows()
	scratch := make([]float64, 2*n)
	return g.predictOneInto(x, scratch[:n], scratch[n:])
}

// predictOneInto computes one posterior (mean, std) using caller-provided
// scratch: ks and v must each have length NumTrain and are overwritten.
func (g *GP) predictOneInto(x, ks, v []float64) (float64, float64) {
	g.rowEval.Eval(x, 0, ks)
	mean := mat.Dot(ks, g.alpha) + g.yMean
	// σ² = k** − vᵀv with v = L⁻¹ k*. The serial solve is bitwise-identical
	// to the parallel one; callers of this method are themselves chunks of a
	// ParallelFor, so nested dispatch would only allocate.
	g.chol.ForwardSolveVecToSerial(v, ks)
	variance := g.kern.Eval(x, x) - mat.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

// logMarginalLikelihood evaluates the LML and its gradient with respect to
// the log-space hyperparameters (kernel params, then log σ_n when withNoise
// is true), using the standard identity
//
//	∂LML/∂θ = ½ tr((ααᵀ − K_y⁻¹) ∂K_y/∂θ).
func logMarginalLikelihood(k kernel.Kernel, logNoise float64, x *mat.Dense, y []float64, withNoise bool) (float64, []float64, error) {
	n := x.Rows()
	ky, grads := kernel.GramGrad(k, x)
	noise2 := math.Exp(2 * logNoise)
	ky.AddDiag(noise2)
	ch, err := mat.NewCholeskyJitter(ky, 1e-10, 1e-6)
	if err != nil {
		return 0, nil, err
	}
	alpha := ch.SolveVec(y)
	lml := -0.5*mat.Dot(y, alpha) - 0.5*ch.LogDet() - 0.5*float64(n)*math.Log(2*math.Pi)

	kinv := ch.Inverse()
	np := k.NumParams()
	dim := np
	if withNoise {
		dim++
	}
	grad := make([]float64, dim)
	for t := 0; t < np; t++ {
		grad[t] = 0.5 * traceInnerDiff(alpha, kinv, grads[t])
	}
	if withNoise {
		// ∂K_y/∂(log σ_n) = 2 σ_n² I, so the trace reduces to the diagonal.
		var tr float64
		for i := 0; i < n; i++ {
			tr += alpha[i]*alpha[i] - kinv.At(i, i)
		}
		grad[np] = 0.5 * tr * 2 * noise2
	}
	return lml, grad, nil
}

// traceInnerDiff computes tr((ααᵀ − K⁻¹)·D) = αᵀDα − tr(K⁻¹D) without
// forming ααᵀ. The trace term is the Frobenius inner product of K⁻¹ and D,
// evaluated row-parallel with a deterministic block-ordered reduction.
func traceInnerDiff(alpha []float64, kinv, d *mat.Dense) float64 {
	quad := mat.Dot(alpha, d.MulVec(alpha))
	return quad - mat.TraceMulElem(kinv, d)
}
