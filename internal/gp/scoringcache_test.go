package gp

import (
	"math"
	"math/rand"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// scoringTol is the pinned agreement between cached scores and direct
// Predict (the two paths group floating-point operations differently, so
// they are close, not bitwise-equal).
const scoringTol = 1e-12

func poolRows(rng *rand.Rand, m, d int) [][]float64 {
	rows := make([][]float64, m)
	for i := range rows {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.Float64() * 4
		}
		rows[i] = r
	}
	return rows
}

func denseOf(rows [][]float64) *mat.Dense {
	x := mat.NewDense(len(rows), len(rows[0]), nil)
	for i, r := range rows {
		copy(x.Row(i), r)
	}
	return x
}

func checkAgainstPredict(t *testing.T, tag string, g *GP, c *ScoringCache, pool [][]float64) {
	t.Helper()
	if c.Len() != len(pool) {
		t.Fatalf("%s: cache has %d candidates, pool has %d", tag, c.Len(), len(pool))
	}
	if len(pool) == 0 {
		return
	}
	mu, sigma := c.Scores()
	wantMu, wantSigma := g.Predict(denseOf(pool))
	for i := range pool {
		if math.Abs(mu[i]-wantMu[i]) > scoringTol {
			t.Fatalf("%s: candidate %d: cached mu %.17g, Predict %.17g", tag, i, mu[i], wantMu[i])
		}
		if math.Abs(sigma[i]-wantSigma[i]) > scoringTol {
			t.Fatalf("%s: candidate %d: cached sigma %.17g, Predict %.17g", tag, i, sigma[i], wantSigma[i])
		}
	}
}

func fitTestGP(t *testing.T, rng *rand.Rand, n int) *GP {
	t.Helper()
	x, y := eqTrainingSet(rng, n)
	g := New(kernel.NewRBF(0.8, 1.2), Config{Noise: 0.05, NoOptimize: true})
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	return g
}

// The core equivalence property: over a randomized schedule of appends,
// removals, and hyperparameter refits, cached scores track direct Predict
// within 1e-12 for every live candidate.
func TestScoringCacheMatchesPredict(t *testing.T) {
	ops := 80
	if testing.Short() {
		ops = 30
	}
	rng := rand.New(rand.NewSource(11))
	g := fitTestGP(t, rng, 14)
	pool := poolRows(rng, 32, 2)
	c := NewScoringCache(g, denseOf(pool))
	defer c.Close()
	checkAgainstPredict(t, "initial", g, c, pool)

	for op := 0; op < ops; op++ {
		switch {
		case op%9 == 8:
			// Perturb hyperparameters and refit: every cached row is wrong
			// until the rebuild pass runs.
			hp := g.Hyperparams()
			for i := range hp {
				hp[i] += 0.05 * rng.NormFloat64()
			}
			g.SetHyperparams(hp)
			if err := g.Refit(); err != nil {
				t.Fatalf("op %d: Refit: %v", op, err)
			}
		case op%3 == 1 && len(pool) > 4:
			p := rng.Intn(len(pool))
			pool = append(pool[:p], pool[p+1:]...)
			c.Remove(p)
		default:
			x := []float64{rng.Float64() * 4, rng.Float64() * 4}
			y := math.Sin(x[0]) * math.Cos(x[1])
			if err := g.Append(x, y); err != nil {
				t.Fatalf("op %d: Append: %v", op, err)
			}
		}
		checkAgainstPredict(t, "after op", g, c, pool)
	}
}

// The censored-OOM feed pattern of the online runtime: the memory surrogate
// absorbs observations the cost surrogate never sees. Each cache tracks
// exactly its own model, so asymmetric appends keep both caches correct.
func TestScoringCacheCensoredFeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	gCost := fitTestGP(t, rng, 12)
	gMem := fitTestGP(t, rng, 12)
	pool := poolRows(rng, 20, 2)
	cCost := NewScoringCache(gCost, denseOf(pool))
	defer cCost.Close()
	cMem := NewScoringCache(gMem, denseOf(pool))
	defer cMem.Close()

	for op := 0; op < 40; op++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4}
		y := math.Sin(x[0]) * math.Cos(x[1])
		censored := op%4 == 1
		if !censored {
			if err := gCost.Append(x, y); err != nil {
				t.Fatal(err)
			}
		}
		// An OOM kill feeds the memory model its clamped lower bound.
		if err := gMem.Append(x, y+0.5); err != nil {
			t.Fatal(err)
		}
		if op%10 == 9 {
			if err := gCost.Refit(); err != nil {
				t.Fatal(err)
			}
			if err := gMem.Refit(); err != nil {
				t.Fatal(err)
			}
		}
		if op%5 == 3 && len(pool) > 2 {
			p := rng.Intn(len(pool))
			pool = append(pool[:p], pool[p+1:]...)
			cCost.Remove(p)
			cMem.Remove(p)
		}
		checkAgainstPredict(t, "cost", gCost, cCost, pool)
		checkAgainstPredict(t, "mem", gMem, cMem, pool)
	}
}

// The checkpoint-resume contract: a cache maintained incrementally across a
// run of appends holds bit-for-bit the state of a cache freshly built (and
// hence rebuilt) at the final model size.
func TestScoringCacheIncrementalMatchesRebuildBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := fitTestGP(t, rng, 10)
	pool := poolRows(rng, 25, 2)
	live := NewScoringCache(g, denseOf(pool))
	defer live.Close()
	// Force the initial build before the appends so the live cache really
	// takes the incremental path below.
	live.Scores()
	for op := 0; op < 70; op++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4}
		if err := g.Append(x, math.Sin(x[0])); err != nil {
			t.Fatal(err)
		}
		if op%6 == 5 && len(pool) > 3 {
			p := rng.Intn(len(pool))
			pool = append(pool[:p], pool[p+1:]...)
			live.Remove(p)
		}
	}
	fresh := NewScoringCache(g, denseOf(pool))
	defer fresh.Close()

	liveMu, liveSigma := live.Scores()
	freshMu, freshSigma := fresh.Scores()
	if !bitwiseEq(liveMu, freshMu) {
		t.Fatal("incrementally maintained means differ bitwise from a fresh rebuild")
	}
	if !bitwiseEq(liveSigma, freshSigma) {
		t.Fatal("incrementally maintained sigmas differ bitwise from a fresh rebuild")
	}
}

// Worker-count independence: the cache's parallel passes (rebuild, extend,
// score) must produce identical bits for any pool size.
func TestScoringCacheSerialParallelIdentical(t *testing.T) {
	run := func(workers int) (mu, sigma []float64) {
		withWorkers(workers, func() {
			rng := rand.New(rand.NewSource(31))
			g := fitTestGP(t, rng, 12)
			pool := poolRows(rng, 40, 2)
			c := NewScoringCache(g, denseOf(pool))
			defer c.Close()
			for op := 0; op < 30; op++ {
				x := []float64{rng.Float64() * 4, rng.Float64() * 4}
				if err := g.Append(x, math.Cos(x[1])); err != nil {
					t.Fatal(err)
				}
				if op%7 == 6 {
					c.Remove(rng.Intn(c.Len()))
				}
			}
			m, s := c.Scores()
			mu = append([]float64(nil), m...)
			sigma = append([]float64(nil), s...)
		})
		return mu, sigma
	}
	mu1, sigma1 := run(1)
	mu8, sigma8 := run(8)
	if !bitwiseEq(mu1, mu8) || !bitwiseEq(sigma1, sigma8) {
		t.Fatal("cached scores depend on the worker count")
	}
}

// Close must detach: a closed cache no longer burns time (or breaks) when
// the model keeps evolving, and the GP's cache list shrinks.
func TestScoringCacheClose(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := fitTestGP(t, rng, 10)
	c := NewScoringCache(g, denseOf(poolRows(rng, 5, 2)))
	c.Close()
	if len(g.caches) != 0 {
		t.Fatalf("GP still tracks %d caches after Close", len(g.caches))
	}
	if err := g.Append([]float64{1, 1}, 0.5); err != nil {
		t.Fatal(err)
	}
}
