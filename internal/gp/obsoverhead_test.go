package gp

import (
	"math"
	"testing"

	"alamr/internal/obs"
)

// TestObsOverheadGate is the CI-enforceable form of the <2% disabled-
// observability budget on the scoring hot path. Run-to-run ratios of two
// full benchmark runs are too noisy to gate on, so the gate bounds the
// overhead analytically from quantities that are individually stable:
//
//	overhead ≈ (instrument events per trajectory op) × (cost of one
//	           disabled no-op handle call)
//
// The event count is measured exactly — run one cached trajectory with a
// live registry and sum every counter and histogram — and the per-call
// no-op cost is measured with testing.Benchmark. A 4× safety factor
// absorbs gauge writes (which the registry cannot count), span handles,
// and timer noise. The before/after evidence for the same claim lives in
// results/bench_baseline_pr4.txt and results/bench_after_pr4.txt.
func TestObsOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate uses testing.Benchmark; skipped in -short")
	}
	// The smallest benchmark case is the most overhead-sensitive: fixed
	// instrumentation cost against the least numerical work.
	const n, m, d = 50, 100, 5

	// 1. Exact instrument-event count of one cached trajectory op.
	obs.Disable()
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)
	gc, gm := benchFitPair(t, n, d)
	scoreTrajectory(t, gc, gm, benchPool(m, d, 99), true)
	obs.Disable()
	snap := reg.TakeSnapshot()
	var events int64
	for _, v := range snap.Counters {
		events += v
	}
	for _, h := range snap.Histograms {
		events += h.Count
	}
	if events == 0 {
		t.Fatal("instrumentation did not fire on the scoring path")
	}

	// 2. Cost of one disabled handle call (all flavors; take the worst).
	perOp := func(f func()) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	worst := math.Max(
		math.Max(perOp(func() { obs.CacheHits.Inc() }), perOp(func() { obs.GPTrainRows.Set(1) })),
		math.Max(perOp(func() { obs.JobCost.Observe(1) }), perOp(func() { obs.SpanScore.Start().End() })),
	)

	// 3. Wall time of the same trajectory op with observability disabled.
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			gc, gm := benchFitPair(b, n, d)
			pool := benchPool(m, d, 99)
			b.StartTimer()
			benchSink += scoreTrajectory(b, gc, gm, pool, true)
		}
	})
	iterNs := float64(r.T.Nanoseconds()) / float64(r.N)

	overheadNs := 4 * float64(events) * worst
	limitNs := 0.02 * iterNs
	t.Logf("events/op=%d worst-handle=%.2f ns overhead≈%.0f ns vs op=%.0f ns (%.4f%%, gate 2%%)",
		events, worst, overheadNs, iterNs, 100*overheadNs/iterNs)
	if overheadNs > limitNs {
		t.Fatalf("disabled-observability overhead bound %.0f ns exceeds 2%% of the %.0f ns scoring op",
			overheadNs, iterNs)
	}
}
