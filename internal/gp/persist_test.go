package gp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kernels := []kernel.Kernel{
		kernel.NewRBF(0.4, 1.2),
		kernel.NewARDRBF([]float64{0.3, 0.7}, 0.9),
		kernel.NewMatern(1.5, 0.5, 1.1),
		kernel.NewMatern(2.5, 0.6, 0.8),
	}
	for _, k := range kernels {
		n := 15
		x := mat.NewDense(n, 2, nil)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x.Set(i, 0, rng.Float64())
			x.Set(i, 1, rng.Float64())
			y[i] = 3 + math.Sin(5*x.At(i, 0)) + rng.NormFloat64()*0.05
		}
		g := New(k, Config{Noise: 0.1, Seed: 2, NormalizeY: true})
		if err := g.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		probe := mat.NewDense(5, 2, nil)
		for i := 0; i < 5; i++ {
			probe.Set(i, 0, rng.Float64())
			probe.Set(i, 1, rng.Float64())
		}
		m1, s1 := g.Predict(probe)
		m2, s2 := back.Predict(probe)
		for i := range m1 {
			if math.Abs(m1[i]-m2[i]) > 1e-10 || math.Abs(s1[i]-s2[i]) > 1e-10 {
				t.Fatalf("%v: prediction changed after round trip: %g/%g vs %g/%g",
					k, m1[i], s1[i], m2[i], s2[i])
			}
		}
		// The restored model remains usable for incremental updates.
		if err := back.Append([]float64{0.5, 0.5}, 3.2); err != nil {
			t.Fatalf("%v: append after load: %v", k, err)
		}
	}
}

func TestSaveBeforeFitFails(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{})
	var buf bytes.Buffer
	if err := g.Save(&buf); err == nil {
		t.Fatal("Save before Fit accepted")
	}
}

func TestLoadCorruptInputs(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"bad version":  `{"version":9}`,
		"empty data":   `{"version":1,"kernel_type":"rbf","kernel_params":[0,0],"x":[],"y":[]}`,
		"unknown kern": `{"version":1,"kernel_type":"cubic","dims":1,"kernel_params":[0],"x":[[1]],"y":[1]}`,
		"param count":  `{"version":1,"kernel_type":"rbf","dims":1,"kernel_params":[0],"x":[[1]],"y":[1]}`,
		"ragged row":   `{"version":1,"kernel_type":"rbf","dims":2,"kernel_params":[0,0],"x":[[1]],"y":[1]}`,
		"xy mismatch":  `{"version":1,"kernel_type":"rbf","dims":1,"kernel_params":[0,0],"x":[[1]],"y":[1,2]}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(payload)); err == nil {
				t.Fatalf("corrupt payload accepted: %s", payload)
			}
		})
	}
}

func TestSaveLoadPreservesHyperparams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := mat.NewDense(10, 1, nil)
	y := make([]float64, 10)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, rng.Float64()*2)
		y[i] = math.Cos(3 * x.At(i, 0))
	}
	g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, Seed: 4})
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := g.Hyperparams(), back.Hyperparams()
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("hyperparams changed: %v vs %v", h1, h2)
		}
	}
	if back.NumTrain() != g.NumTrain() {
		t.Fatal("training size changed")
	}
}
