package gp

import (
	"fmt"
	"math"

	"alamr/internal/mat"
)

// FidelityScorer is the extra scoring surface a multi-fidelity pool cache
// (or model) exposes beyond PoolCache: the per-candidate top-fidelity
// information gain that the cost-per-information acquisition divides by
// predicted cost.
type FidelityScorer interface {
	// TopInfoGains returns w_l²·σ_δl²(x) for every live candidate in pool
	// order; the slice is owned by the implementation.
	TopInfoGains() []float64
}

var (
	_ PoolCache      = (*MultiFidCache)(nil)
	_ FidelityScorer = (*MultiFidCache)(nil)
)

// MultiFidCache is the incremental pool-scoring cache for the MultiFid
// surrogate: one ordinary ScoringCache per fitted ladder level, all over
// the same stripped candidate points, recombined per candidate with the
// live inter-level scales,
//
//	μ_l = ρ_l·μ_{l−1} + μ_δl,   σ_l² = ρ_l²·σ_{l−1}² + σ_δl².
//
// Each per-level sub-cache registers with its level's δ-GP directly, so an
// Append extends exactly the appended level's rows and a Refit invalidates
// each level as it refits — the single-fidelity incremental-scoring
// contract, inherited per level. Because ScoringCache state rebuilt at size
// n is bitwise the state extended append-by-append, and the recombination
// is plain index-ordered arithmetic, the whole multi-fidelity cache scores
// bitwise-identically across checkpoint resume.
//
// Levels that gain their first observation mid-campaign (their δ-GP appears
// at Append time) pick up a sub-cache lazily on the next Scores call; until
// then they contribute zero mean and the kernel prototype's prior variance,
// matching MultiFid.Predict.
type MultiFidCache struct {
	m *MultiFid

	xs     [][]float64 // pool position → stripped candidate point
	levels []int       // pool position → ladder level

	subs  []*ScoringCache // per ladder level; nil while that level is unfitted
	subGP []*GP           // the δ-GP each sub was built against

	mu, sigma, gains []float64 // pool-order output buffers
}

// NewMultiFidCache attaches a per-level incremental posterior cache for the
// candidate rows of x to the fitted multi-fidelity model m. Every row's
// fidelity dial must be on the ladder. Candidate features are copied.
func NewMultiFidCache(m *MultiFid, x *mat.Dense) *MultiFidCache {
	if !m.fitted {
		panic("gp: NewMultiFidCache before Fit")
	}
	mm := x.Rows()
	c := &MultiFidCache{
		m:      m,
		xs:     make([][]float64, mm),
		levels: make([]int, mm),
		subs:   make([]*ScoringCache, m.NumLevels()),
		subGP:  make([]*GP, m.NumLevels()),
	}
	for i := 0; i < mm; i++ {
		row := x.Row(i)
		l, err := m.Level(row)
		if err != nil {
			panic(fmt.Sprintf("gp: NewMultiFidCache row %d: %v", i, err))
		}
		c.levels[i] = l
		c.xs[i] = m.strip(row)
	}
	c.sync()
	return c
}

// sync reconciles the per-level sub-caches with the model's current level
// GPs: a level whose δ-GP appeared (or was replaced wholesale by a full
// Fit) gets a fresh ScoringCache over the live candidate points.
func (c *MultiFidCache) sync() {
	for j := range c.subs {
		g := c.m.levels[j]
		if c.subGP[j] == g {
			continue
		}
		if c.subs[j] != nil {
			c.subs[j].Close()
			c.subs[j] = nil
		}
		c.subGP[j] = g
		if g != nil {
			c.subs[j] = NewScoringCache(g, rowsDenseAllowEmpty(c.xs))
		}
	}
}

// Len reports the number of live candidates.
func (c *MultiFidCache) Len() int { return len(c.levels) }

// Close detaches every per-level sub-cache from its δ-GP.
func (c *MultiFidCache) Close() {
	for j, s := range c.subs {
		if s != nil {
			s.Close()
			c.subs[j] = nil
		}
		c.subGP[j] = nil
	}
}

// Scores returns the recursive posterior mean and standard deviation for
// every live candidate in pool order, and refreshes the per-candidate
// top-fidelity gains TopInfoGains serves. The slices are owned by the
// cache and overwritten by the next call.
func (c *MultiFidCache) Scores() (mu, sigma []float64) {
	c.sync()
	mm := len(c.levels)
	if cap(c.mu) < mm {
		c.mu = make([]float64, mm)
		c.sigma = make([]float64, mm)
	}
	if cap(c.gains) < mm {
		c.gains = make([]float64, mm)
	}
	c.mu, c.sigma, c.gains = c.mu[:mm], c.sigma[:mm], c.gains[:mm]
	L := len(c.subs)
	dmu := make([][]float64, L)
	dsig := make([][]float64, L)
	for j, s := range c.subs {
		if s != nil {
			dmu[j], dsig[j] = s.Scores()
		}
	}
	rho := c.m.rho
	for p := 0; p < mm; p++ {
		lvl := c.levels[p]
		var muAcc, varAcc, sdOwn float64
		for j := 0; j <= lvl; j++ {
			var md, sd float64
			if dmu[j] != nil {
				md, sd = dmu[j][p], dsig[j][p]
			} else {
				md, sd = 0, c.m.priorStd(c.xs[p])
			}
			if j == lvl {
				sdOwn = sd
			}
			if j == 0 {
				muAcc, varAcc = md, sd*sd
			} else {
				muAcc = rho[j]*muAcc + md
				varAcc = rho[j]*rho[j]*varAcc + sd*sd
			}
		}
		c.mu[p] = muAcc
		c.sigma[p] = math.Sqrt(varAcc)
		c.gains[p] = c.m.topWeight(lvl) * sdOwn * sdOwn
	}
	return c.mu, c.sigma
}

// TopInfoGains returns the per-candidate top-fidelity information gains in
// pool order, computing them (via Scores) if the pool changed since the
// last Scores call.
func (c *MultiFidCache) TopInfoGains() []float64 {
	if c.gains == nil || len(c.gains) != len(c.levels) {
		c.Scores()
	}
	return c.gains
}

// Remove deletes the candidate at pool position p from every per-level
// sub-cache and from the recombination bookkeeping.
func (c *MultiFidCache) Remove(p int) {
	if p < 0 || p >= len(c.levels) {
		panic(fmt.Sprintf("gp: MultiFidCache.Remove position %d out of range %d", p, len(c.levels)))
	}
	for _, s := range c.subs {
		if s != nil {
			s.Remove(p)
		}
	}
	c.xs = append(c.xs[:p], c.xs[p+1:]...)
	c.levels = append(c.levels[:p], c.levels[p+1:]...)
	c.gains = nil // force a recombination before the next TopInfoGains
}

// rowsDenseAllowEmpty is rowsDense tolerating an empty pool (a drained
// campaign may still sync a late-appearing level).
func rowsDenseAllowEmpty(rows [][]float64) *mat.Dense {
	if len(rows) == 0 {
		return mat.NewDense(0, 1, nil)
	}
	return rowsDense(rows)
}
