package gp

import (
	"fmt"
	"math/rand"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

// trajIters is the number of AL iterations each benchmark op simulates:
// score the pool with both surrogates, pick the highest-uncertainty
// candidate, absorb it into both models, remove it from the pool.
const trajIters = 16

var benchSink float64

func benchPool(m, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, m)
	for i := range rows {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	return rows
}

func benchDense(rows [][]float64) *mat.Dense {
	x := mat.NewDense(len(rows), len(rows[0]), nil)
	for i, r := range rows {
		copy(x.Row(i), r)
	}
	return x
}

func benchFitPair(b testing.TB, n, d int) (*GP, *GP) {
	b.Helper()
	x, y := benchTraining(n, d)
	gc := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, NoOptimize: true})
	if err := gc.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	gm := New(kernel.NewRBF(1.3, 0.9), Config{Noise: 0.1, NoOptimize: true})
	if err := gm.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	return gc, gm
}

// scoreTrajectory runs trajIters score→select→append→remove iterations and
// returns a checksum. The pick rule (argmax of summed uncertainty, ties to
// the lower index) is deterministic, so direct and cached runs follow the
// same trajectory.
func scoreTrajectory(b testing.TB, gc, gm *GP, pool [][]float64, cached bool) float64 {
	b.Helper()
	var sum float64
	absorb := func(x []float64, mu float64) {
		if err := gc.Append(x, mu); err != nil {
			b.Fatal(err)
		}
		if err := gm.Append(x, 0.5*mu); err != nil {
			b.Fatal(err)
		}
	}
	if cached {
		cc := NewScoringCache(gc, benchDense(pool))
		defer cc.Close()
		cm := NewScoringCache(gm, benchDense(pool))
		defer cm.Close()
		for it := 0; it < trajIters; it++ {
			muC, sigC := cc.Scores()
			_, sigM := cm.Scores()
			pick := argmaxSum(sigC, sigM)
			sum += sigC[pick]
			absorb(pool[pick], muC[pick])
			cc.Remove(pick)
			cm.Remove(pick)
			pool = append(pool[:pick], pool[pick+1:]...)
		}
		return sum
	}
	for it := 0; it < trajIters; it++ {
		x := benchDense(pool)
		muC, sigC := gc.Predict(x)
		_, sigM := gm.Predict(x)
		pick := argmaxSum(sigC, sigM)
		sum += sigC[pick]
		absorb(pool[pick], muC[pick])
		pool = append(pool[:pick], pool[pick+1:]...)
	}
	return sum
}

func argmaxSum(a, b []float64) int {
	best, bestV := 0, a[0]+b[0]
	for i := 1; i < len(a); i++ {
		if v := a[i] + b[i]; v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// BenchmarkTrajectoryScoring measures the per-iteration candidate-scoring
// work of the AL loop (both surrogates over the whole pool) across training
// sizes n and pool sizes m, direct Predict vs the incremental ScoringCache.
// Each op is a trajIters-iteration trajectory starting from a freshly
// fitted model pair (fitting excluded from the timing).
func BenchmarkTrajectoryScoring(b *testing.B) {
	const d = 5
	for _, n := range []int{50, 200, 600} {
		for _, m := range []int{100, 400} {
			for _, mode := range []string{"direct", "cached"} {
				b.Run(fmt.Sprintf("n=%d/m=%d/%s", n, m, mode), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						gc, gm := benchFitPair(b, n, d)
						pool := benchPool(m, d, 99)
						b.StartTimer()
						benchSink += scoreTrajectory(b, gc, gm, pool, mode == "cached")
					}
				})
			}
		}
	}
}
