package gp

import (
	"math"
	"math/rand"
	"testing"

	"alamr/internal/kernel"
	"alamr/internal/mat"
)

func TestAppendMatchesFullRefit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 15
	x := mat.NewDense(n, 2, nil)
	y := make([]float64, n)
	fn := func(a, b float64) float64 { return math.Sin(3*a) + b*b }
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
		y[i] = fn(x.At(i, 0), x.At(i, 1))
	}

	// Incremental model: fit on the first 10, append 5.
	inc := New(kernel.NewRBF(0.5, 1), Config{Noise: 0.05, FixedNoise: true, NoOptimize: true, NormalizeY: false})
	x10 := mat.NewDense(10, 2, nil)
	for i := 0; i < 10; i++ {
		copy(x10.Row(i), x.Row(i))
	}
	if err := inc.Fit(x10, y[:10]); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < n; i++ {
		if err := inc.Append(x.Row(i), y[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Batch model on all 15 with the same hyperparameters.
	batch := New(kernel.NewRBF(0.5, 1), Config{Noise: 0.05, FixedNoise: true, NoOptimize: true, NormalizeY: false})
	if err := batch.Fit(x, y); err != nil {
		t.Fatal(err)
	}

	probe := mat.NewDense(8, 2, nil)
	for i := 0; i < 8; i++ {
		probe.Set(i, 0, rng.Float64())
		probe.Set(i, 1, rng.Float64())
	}
	mi, si := inc.Predict(probe)
	mb, sb := batch.Predict(probe)
	for i := range mi {
		if math.Abs(mi[i]-mb[i]) > 1e-8 {
			t.Fatalf("mean[%d]: incremental %g vs batch %g", i, mi[i], mb[i])
		}
		if math.Abs(si[i]-sb[i]) > 1e-8 {
			t.Fatalf("std[%d]: incremental %g vs batch %g", i, si[i], sb[i])
		}
	}
	if math.Abs(inc.LogMarginalLikelihood()-batch.LogMarginalLikelihood()) > 1e-8 {
		t.Fatalf("LML: %g vs %g", inc.LogMarginalLikelihood(), batch.LogMarginalLikelihood())
	}
	if inc.NumTrain() != 15 {
		t.Fatalf("NumTrain = %d", inc.NumTrain())
	}
}

func TestAppendValidation(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{})
	if err := g.Append([]float64{1}, 1); err == nil {
		t.Fatal("Append before Fit accepted")
	}
	x := mat.NewDense(2, 1, []float64{0, 1})
	if err := g.Fit(x, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Append([]float64{1, 2}, 1); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if err := g.Append([]float64{1}, math.NaN()); err == nil {
		t.Fatal("NaN target accepted")
	}
}

func TestAppendDuplicatePointStable(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, FixedNoise: true, NoOptimize: true})
	x := mat.NewDense(3, 1, []float64{0, 0.5, 1})
	if err := g.Fit(x, []float64{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	// Append the same input several times — near-singular border.
	for i := 0; i < 4; i++ {
		if err := g.Append([]float64{0.5}, 1.02); err != nil {
			t.Fatal(err)
		}
	}
	mean, std := g.PredictOne([]float64{0.5})
	if math.IsNaN(mean) || math.IsNaN(std) {
		t.Fatal("NaN after duplicate appends")
	}
	if math.Abs(mean-1) > 0.2 {
		t.Fatalf("mean at duplicate = %g want ~1", mean)
	}
}

func TestRefitAfterAppendImprovesHyperparams(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := New(kernel.NewRBF(3, 0.2), Config{Noise: 0.5, Seed: 3})
	x := mat.NewDense(5, 1, nil)
	y := make([]float64, 5)
	for i := 0; i < 5; i++ {
		x.Set(i, 0, float64(i)/5)
		y[i] = math.Sin(6 * x.At(i, 0))
	}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 25; i++ {
		v := rng.Float64()
		if err := g.Append([]float64{v}, math.Sin(6*v)); err != nil {
			t.Fatal(err)
		}
	}
	before := g.LogMarginalLikelihood()
	if err := g.Refit(); err != nil {
		t.Fatal(err)
	}
	if g.LogMarginalLikelihood() < before-1e-9 {
		t.Fatalf("Refit decreased LML: %g -> %g", before, g.LogMarginalLikelihood())
	}
}

func TestTrainingData(t *testing.T) {
	g := New(kernel.NewRBF(1, 1), Config{NormalizeY: true, NoOptimize: true})
	if x, y := g.TrainingData(); x != nil || y != nil {
		t.Fatal("TrainingData before Fit should be nil")
	}
	x := mat.NewDense(2, 1, []float64{0, 1})
	if err := g.Fit(x, []float64{10, 12}); err != nil {
		t.Fatal(err)
	}
	if err := g.Append([]float64{0.5}, 11); err != nil {
		t.Fatal(err)
	}
	xt, yt := g.TrainingData()
	if xt.Rows() != 3 || len(yt) != 3 {
		t.Fatal("TrainingData sizes")
	}
	// Targets come back uncentred.
	if math.Abs(yt[0]-10) > 1e-12 || math.Abs(yt[2]-11) > 1e-12 {
		t.Fatalf("uncentred targets wrong: %v", yt)
	}
}

func BenchmarkAppend200(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	build := func() *GP {
		g := New(kernel.NewRBF(1, 1), Config{Noise: 0.1, NoOptimize: true})
		x := mat.NewDense(200, 5, nil)
		y := make([]float64, 200)
		for i := 0; i < 200; i++ {
			for j := 0; j < 5; j++ {
				x.Set(i, j, rng.Float64())
			}
			y[i] = rng.NormFloat64()
		}
		if err := g.Fit(x, y); err != nil {
			b.Fatal(err)
		}
		return g
	}
	g := build()
	pt := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Append(pt, 1); err != nil {
			b.Fatal(err)
		}
		if g.NumTrain() > 400 {
			b.StopTimer()
			g = build()
			b.StartTimer()
		}
	}
}
