package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/report"
	"alamr/internal/stats"
)

// WeightedErrorRow reports one policy's final errors under the two metrics
// of §V-D: the paper's uniform-weight RMSE (eq. 10) and the cost-weighted
// variant (eq. 12 with ρ proportional to each test job's actual cost), which
// the paper argues is the right metric for cost-efficient AL — mispredicting
// an expensive job matters more than mispredicting a cheap one.
type WeightedErrorRow struct {
	Policy        string
	UniformRMSE   float64
	CostWeighted  float64
	CheapQuartile float64 // RMSE restricted to the cheapest test quartile
	DearQuartile  float64 // RMSE restricted to the most expensive quartile
}

// weightedCell is one (policy, partition) campaign's metric quadruple.
type weightedCell struct {
	uni, wtd, cheap, dear float64
}

// WeightedErrorStudy trains each policy's final cost model (initial
// partition plus everything the policy selected) and scores it under
// uniform, cost-weighted, and per-quartile RMSE. Medians across partitions.
//
// The (policy, partition) grid runs as one engine sweep. The partition and
// run seeds deliberately do not involve the policy, so every policy is
// scored on identical splits with an identical RNG stream; the splits are
// drawn once up front and shared across the grid.
func WeightedErrorStudy(opts Options) ([]WeightedErrorRow, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	nInit := scaleNInit(opts.Dataset, 50)
	policies := []core.Policy{core.RandUniform{}, core.MinPred{}, core.RandGoodness{}, core.MaxSigma{}}

	parts := make([]dataset.Partition, opts.Partitions)
	seeds := make([]int64, opts.Partitions)
	for pi := range parts {
		rng := rand.New(rand.NewSource(stats.SplitSeed(opts.Seed+11, pi*10)))
		part, err := dataset.Split(opts.Dataset, nInit, opts.NTest, rng)
		if err != nil {
			return nil, err
		}
		parts[pi] = part
		seeds[pi] = stats.SplitSeed(opts.Seed+11, 5000+pi)
	}

	var items []engine.SweepItem
	for _, policy := range policies {
		for pi := 0; pi < opts.Partitions; pi++ {
			policy, pi := policy, pi
			items = append(items, engine.SweepItem{
				ID: fmt.Sprintf("weighted/%s/part=%d", policy.Name(), pi),
				Run: func(scope *engine.CampaignObs) (any, error) {
					tr, err := core.RunTrajectory(opts.Dataset, parts[pi], core.LoopConfig{
						Policy:        policy,
						MaxIterations: opts.MaxIterations,
						HyperoptEvery: opts.HyperoptEvery,
						Seed:          seeds[pi],
						Campaign:      scope,
					})
					if err != nil {
						return nil, err
					}
					return scoreFinalModel(opts.Dataset, parts[pi], tr)
				},
			})
		}
	}
	results, err := engine.Sweep(engine.SweepConfig{Workers: opts.Workers, Items: items})
	if err != nil {
		return nil, err
	}

	var rows []WeightedErrorRow
	tb := &report.Table{Header: []string{"policy", "uniform RMSE", "cost-weighted RMSE", "cheap-quartile", "expensive-quartile"}}
	for qi, policy := range policies {
		var uni, wtd, cheap, dear []float64
		for pi := 0; pi < opts.Partitions; pi++ {
			cell := results[qi*opts.Partitions+pi].Value.(weightedCell)
			uni = append(uni, cell.uni)
			wtd = append(wtd, cell.wtd)
			cheap = append(cheap, cell.cheap)
			dear = append(dear, cell.dear)
		}
		row := WeightedErrorRow{
			Policy:        policy.Name(),
			UniformRMSE:   stats.Median(uni),
			CostWeighted:  stats.Median(wtd),
			CheapQuartile: stats.Median(cheap),
			DearQuartile:  stats.Median(dear),
		}
		rows = append(rows, row)
		tb.Add(row.Policy, row.UniformRMSE, row.CostWeighted, row.CheapQuartile, row.DearQuartile)
	}
	fmt.Fprintln(opts.Out, "§V-D: uniform vs cost-weighted error metrics (final cost models)")
	if err := tb.Write(opts.Out); err != nil {
		return nil, err
	}
	fmt.Fprintln(opts.Out, "note: cost-greedy policies look strong under uniform RMSE but weak under")
	fmt.Fprintln(opts.Out, "cost weighting — they rarely sample the expensive regime they mispredict.")
	return rows, nil
}

// scoreFinalModel fits the final cost model (initial partition plus every
// selection) and evaluates the §V-D metric quadruple on the test split.
func scoreFinalModel(ds *dataset.Dataset, part dataset.Partition, tr *core.Trajectory) (weightedCell, error) {
	trainIdx := append(append([]int(nil), part.Init...), tr.Selected...)
	g := gp.New(kernel.NewRBF(0.5, 1), gp.Config{Noise: 0.1, NormalizeY: true, Seed: 1})
	if err := g.Fit(ds.Features(trainIdx), ds.LogCost(trainIdx)); err != nil {
		return weightedCell{}, err
	}
	mu, _ := g.Predict(ds.Features(part.Test))
	pred := make([]float64, len(mu))
	for i, m := range mu {
		pred[i] = math.Pow(10, m)
	}
	actual := ds.Cost(part.Test)

	cell := weightedCell{
		uni: stats.RMSE(pred, actual),
		wtd: stats.WeightedRMSE(pred, actual, actual),
	}
	q1 := stats.Quantile(actual, 0.25)
	q3 := stats.Quantile(actual, 0.75)
	var cp, ca, dp, da []float64
	for i, a := range actual {
		if a <= q1 {
			cp = append(cp, pred[i])
			ca = append(ca, a)
		}
		if a >= q3 {
			dp = append(dp, pred[i])
			da = append(da, a)
		}
	}
	cell.cheap = stats.RMSE(cp, ca)
	cell.dear = stats.RMSE(dp, da)
	return cell, nil
}
