// Package experiments contains one driver per table and figure of the
// paper's evaluation (§V), plus the ablations discussed in §V-D. Each driver
// takes a dataset and options, runs the required AL campaigns, and renders
// text/CSV output whose rows and series correspond to what the paper plots.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"alamr/internal/amr"
	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/report"
	"alamr/internal/stats"
)

// Options control every experiment driver.
type Options struct {
	Dataset *dataset.Dataset
	Out     io.Writer // defaults to os.Stdout
	CSVDir  string    // when set, each experiment also writes CSV series here

	Partitions    int   // AL trajectories per configuration (default 10)
	MaxIterations int   // AL iterations per trajectory (default 150, the paper's Fig 2 horizon; 0 = exhaust pool)
	Workers       int   // parallel trajectories (default GOMAXPROCS)
	Seed          int64 // master seed
	NTest         int   // test partition size (default 200, scaled down for small datasets)
	HyperoptEvery int   // hyperparameter refit cadence (default 10)
}

func (o *Options) setDefaults() error {
	if o.Dataset == nil || o.Dataset.Len() == 0 {
		return fmt.Errorf("experiments: Options.Dataset is required")
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Partitions <= 0 {
		o.Partitions = 10
	}
	if o.MaxIterations < 0 {
		o.MaxIterations = 0
	} else if o.MaxIterations == 0 {
		o.MaxIterations = 150
	}
	if o.NTest <= 0 {
		o.NTest = o.Dataset.Len() / 3
		if o.NTest > 200 {
			o.NTest = 200
		}
	}
	if o.HyperoptEvery <= 0 {
		o.HyperoptEvery = 10
	}
	return nil
}

func (o *Options) writeCSV(name string, names []string, series [][]float64) error {
	if o.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.CSVDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(o.CSVDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteCSVSeries(f, names, series); err != nil {
		return err
	}
	return f.Close()
}

// TableI prints the dataset summary table (paper Table I) and returns the
// rows.
func TableI(opts Options) ([]dataset.SummaryRow, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	rows := opts.Dataset.TableI()
	tb := &report.Table{Header: []string{"quantity", "min", "median", "mean", "max"}}
	for _, r := range rows {
		tb.Add(r.Name, r.Min, r.Median, r.Mean, r.Max)
	}
	fmt.Fprintf(opts.Out, "Table I: parameters of the AMR shock-bubble dataset (%d samples, %d unique combos)\n",
		opts.Dataset.Len(), opts.Dataset.UniqueCombos())
	if err := tb.Write(opts.Out); err != nil {
		return nil, err
	}
	costs := opts.Dataset.Cost(nil)
	ratio := stats.Max(costs) / stats.Min(costs)
	fmt.Fprintf(opts.Out, "cost ratio (most/least expensive) = %.3g (paper: 5.4e3)\n", ratio)
	fmt.Fprintf(opts.Out, "cost-memory rank correlation = %.3f (high values make cost-aware policies implicitly memory-safe)\n",
		stats.Spearman(costs, opts.Dataset.Mem(nil)))
	return rows, nil
}

// Fig1Config controls the refinement-progression figure.
type Fig1Config struct {
	R0, RhoIn float64
	Mx        int
	Levels    []int   // maxlevel values to render (default 1..4)
	TEnd      float64 // simulation horizon (default 0.15)
	Width     int     // render width (default 72)
}

// Fig1 reproduces the paper's Fig 1: the shock-bubble solution rendered at
// increasing refinement depth, demonstrating how added levels reveal finer
// features (and cost more). Returns the per-level work stats.
func Fig1(opts Options, cfg Fig1Config) ([]amr.WorkStats, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if cfg.R0 == 0 {
		cfg.R0 = 0.3
	}
	if cfg.RhoIn == 0 {
		cfg.RhoIn = 0.1
	}
	if cfg.Mx == 0 {
		cfg.Mx = 8
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = []int{1, 2, 3, 4}
	}
	if cfg.TEnd == 0 {
		cfg.TEnd = 0.15
	}
	if cfg.Width == 0 {
		cfg.Width = 72
	}
	var out []amr.WorkStats
	for _, lvl := range cfg.Levels {
		sb := amr.ShockBubble{R0: cfg.R0, RhoIn: cfg.RhoIn}
		mcfg := sb.DefaultDomain(cfg.Mx, lvl)
		mesh, err := amr.NewMesh(mcfg)
		if err != nil {
			return nil, err
		}
		st, err := mesh.Run(cfg.TEnd, nil)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(opts.Out, "\nFig 1 — maxlevel=%d: steps=%d cellUpdates=%d leaves=%d (per level %v)\n",
			lvl, st.Steps, st.CellUpdates, st.FinalPatches, st.PatchesPerLevel)
		fmt.Fprint(opts.Out, mesh.RenderASCII(cfg.Width, cfg.Width/4))
		out = append(out, st)
	}
	return out, nil
}

// fig2Policies are the four memory-unaware policies the paper compares in
// Fig 2.
func fig2Policies() []core.Policy {
	return []core.Policy{core.RandUniform{}, core.MaxSigma{}, core.MinPred{}, core.RandGoodness{}}
}

// Fig2 reproduces the cost-distribution violins of Fig 2: for each
// memory-unaware policy, one AL trajectory with n_init=50 selects
// MaxIterations samples, and the distribution of the selected jobs' actual
// costs is summarized.
func Fig2(opts Options) (map[string]stats.ViolinSummary, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	nInit := scaleNInit(opts.Dataset, 50)
	var specs []core.BatchSpec
	for _, p := range fig2Policies() {
		specs = append(specs, core.BatchSpec{Policy: p, NInit: nInit})
	}
	groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
		Specs:      specs,
		NTest:      opts.NTest,
		Partitions: 1, // Fig 2 shows a single trajectory per policy
		Workers:    opts.Workers,
		Seed:       opts.Seed,
		Template: core.LoopConfig{
			MaxIterations: opts.MaxIterations,
			HyperoptEvery: opts.HyperoptEvery,
		},
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]stats.ViolinSummary)
	fmt.Fprintf(opts.Out, "Fig 2: cost distributions of the first %d AL selections (n_init=%d)\n",
		opts.MaxIterations, nInit)
	var names []string
	var series [][]float64
	for _, spec := range specs {
		trs := groups[spec.Key()]
		costs := trs[0].SelectedCost
		v := stats.Violin(costs, 24)
		out[spec.Policy.Name()] = v
		fmt.Fprintln(opts.Out)
		fmt.Fprint(opts.Out, report.ASCIIViolin(spec.Policy.Name(), v, 40))
		names = append(names, spec.Policy.Name())
		series = append(series, costs)
	}
	if err := opts.writeCSV("fig2_selected_costs.csv", names, series); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig3Result groups the cumulative-regret bands per configuration.
type Fig3Result struct {
	Bands  map[string]stats.Band
	Groups map[string][]*core.Trajectory
	Limit  float64 // L_mem in MB
}

// Fig3 reproduces the cumulative-regret comparison: the four memory-unaware
// policies at n_init=50 versus RGMA at n_init ∈ {1, 50, 100}, with the
// paper's memory limit. RGMA's CR should flatten while the others grow.
func Fig3(opts Options) (*Fig3Result, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	limit := core.PaperMemLimitMB(opts.Dataset)
	specs := fig3Specs(opts.Dataset)
	groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
		Specs:      specs,
		NTest:      opts.NTest,
		Partitions: opts.Partitions,
		Workers:    opts.Workers,
		Seed:       opts.Seed,
		Template: core.LoopConfig{
			MaxIterations: opts.MaxIterations,
			HyperoptEvery: opts.HyperoptEvery,
			MemLimitMB:    limit,
		},
	})
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Bands: make(map[string]stats.Band), Groups: groups, Limit: limit}
	fmt.Fprintf(opts.Out, "Fig 3: cumulative regret, L_mem=%.4g MB, %d partitions, %d iterations\n",
		limit, opts.Partitions, opts.MaxIterations)
	tb := &report.Table{Header: []string{"config", "median final CR", "q25", "q75", "median final CC", "violations (median)"}}
	var chartNames []string
	var chartSeries [][]float64
	var keys []string
	for _, s := range specs {
		keys = append(keys, s.Key())
	}
	sort.Strings(keys)
	for _, key := range keys {
		trs := groups[key]
		band, err := core.AggregateCurves(trs, "cum-regret")
		if err != nil {
			return nil, err
		}
		res.Bands[key] = band
		last := len(band.Mid) - 1
		ccBand, _ := core.AggregateCurves(trs, "cum-cost")
		viol := make([]float64, len(trs))
		for i, tr := range trs {
			for _, v := range tr.Violation {
				if v {
					viol[i]++
				}
			}
		}
		tb.Add(key, band.Mid[last], band.Lo[last], band.Hi[last], ccBand.Mid[len(ccBand.Mid)-1], stats.Median(viol))
		chartNames = append(chartNames, key)
		chartSeries = append(chartSeries, band.Mid)
	}
	if err := tb.Write(opts.Out); err != nil {
		return nil, err
	}
	fmt.Fprintln(opts.Out)
	fmt.Fprint(opts.Out, report.ASCIIChart("cumulative regret (median across partitions)", chartNames, chartSeries, 64, 16))
	if err := opts.writeCSV("fig3_cum_regret.csv", chartNames, chartSeries); err != nil {
		return nil, err
	}
	return res, nil
}

func fig3Specs(ds *dataset.Dataset) []core.BatchSpec {
	n50 := scaleNInit(ds, 50)
	n100 := scaleNInit(ds, 100)
	return []core.BatchSpec{
		{Policy: core.RandUniform{}, NInit: n50},
		{Policy: core.MaxSigma{}, NInit: n50},
		{Policy: core.MinPred{}, NInit: n50},
		{Policy: core.RandGoodness{}, NInit: n50},
		{Policy: core.RGMA{}, NInit: 1},
		{Policy: core.RGMA{}, NInit: n50},
		{Policy: core.RGMA{}, NInit: n100},
	}
}

// Fig4Result carries the error-tradeoff curves.
type Fig4Result struct {
	CostRMSE map[string]stats.Band
	MemRMSE  map[string]stats.Band
	CumCost  map[string]stats.Band
	Groups   map[string][]*core.Trajectory
}

// Fig4 reproduces the error/cost trade-off analysis: cost- and memory-model
// RMSE versus iteration for every configuration of Fig 3, plus the
// cumulative cost axis needed for RMSE-vs-CC plots. The paper's headline
// observations — cost-aware policies achieve lower RMSE per unit of
// cumulative cost; RGMA with n_init=1 remains competitive — are printed as
// a final summary table.
func Fig4(opts Options) (*Fig4Result, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	limit := core.PaperMemLimitMB(opts.Dataset)
	specs := fig3Specs(opts.Dataset)
	groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
		Specs:      specs,
		NTest:      opts.NTest,
		Partitions: opts.Partitions,
		Workers:    opts.Workers,
		Seed:       opts.Seed + 1,
		Template: core.LoopConfig{
			MaxIterations: opts.MaxIterations,
			HyperoptEvery: opts.HyperoptEvery,
			MemLimitMB:    limit,
		},
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{
		CostRMSE: make(map[string]stats.Band),
		MemRMSE:  make(map[string]stats.Band),
		CumCost:  make(map[string]stats.Band),
		Groups:   groups,
	}
	tb := &report.Table{Header: []string{"config", "final cost RMSE", "final mem RMSE", "final CC", "RMSE per unit CC"}}
	var names []string
	var rmseSeries, ccSeries [][]float64
	var keys []string
	for _, s := range specs {
		keys = append(keys, s.Key())
	}
	sort.Strings(keys)
	for _, key := range keys {
		trs := groups[key]
		cb, err := core.AggregateCurves(trs, "cost-rmse")
		if err != nil {
			return nil, err
		}
		mb, _ := core.AggregateCurves(trs, "mem-rmse")
		cc, _ := core.AggregateCurves(trs, "cum-cost")
		res.CostRMSE[key] = cb
		res.MemRMSE[key] = mb
		res.CumCost[key] = cc
		last := len(cb.Mid) - 1
		eff := math.NaN()
		if cc.Mid[len(cc.Mid)-1] > 0 {
			eff = cb.Mid[last] / cc.Mid[len(cc.Mid)-1]
		}
		tb.Add(key, cb.Mid[last], mb.Mid[len(mb.Mid)-1], cc.Mid[len(cc.Mid)-1], eff)
		names = append(names, key)
		rmseSeries = append(rmseSeries, cb.Mid)
		ccSeries = append(ccSeries, cc.Mid)
	}
	fmt.Fprintf(opts.Out, "Fig 4: prediction-error trade-offs (%d partitions, %d iterations)\n",
		opts.Partitions, opts.MaxIterations)
	if err := tb.Write(opts.Out); err != nil {
		return nil, err
	}
	fmt.Fprintln(opts.Out)
	fmt.Fprint(opts.Out, report.ASCIIChart("cost-model RMSE vs iteration (median)", names, rmseSeries, 64, 16))
	if err := opts.writeCSV("fig4_cost_rmse.csv", names, rmseSeries); err != nil {
		return nil, err
	}
	if err := opts.writeCSV("fig4_cum_cost.csv", names, ccSeries); err != nil {
		return nil, err
	}
	return res, nil
}

// ViolationTimeline reproduces the §V-C analysis of RGMA's
// learning-from-mistakes behaviour: cumulative memory-limit violations per
// iteration for RGMA at each n_init, contrasted with RandUniform. With a
// small Initial partition RGMA must make early mistakes and then learn to
// avoid the limit; with a large one it avoids them from the start.
func ViolationTimeline(opts Options) (map[string][]float64, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	limit := core.PaperMemLimitMB(opts.Dataset)
	specs := []core.BatchSpec{
		{Policy: core.RandUniform{}, NInit: scaleNInit(opts.Dataset, 50)},
		{Policy: core.RGMA{}, NInit: 1},
		{Policy: core.RGMA{}, NInit: scaleNInit(opts.Dataset, 50)},
		{Policy: core.RGMA{}, NInit: scaleNInit(opts.Dataset, 100)},
	}
	groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
		Specs:      specs,
		NTest:      opts.NTest,
		Partitions: opts.Partitions,
		Workers:    opts.Workers,
		Seed:       opts.Seed + 2,
		Template: core.LoopConfig{
			MaxIterations: opts.MaxIterations,
			HyperoptEvery: opts.HyperoptEvery,
			MemLimitMB:    limit,
		},
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64)
	var names []string
	var series [][]float64
	for _, spec := range specs {
		trs := groups[spec.Key()]
		// Median cumulative violation count across partitions.
		curves := make([][]float64, len(trs))
		for i, tr := range trs {
			c := make([]float64, len(tr.Violation))
			var acc float64
			for k, v := range tr.Violation {
				if v {
					acc++
				}
				c[k] = acc
			}
			curves[i] = c
		}
		band := stats.AggregateBand(curves, 0.25, 0.75)
		out[spec.Key()] = band.Mid
		names = append(names, spec.Key())
		series = append(series, band.Mid)
	}
	fmt.Fprintf(opts.Out, "§V-C: cumulative memory-limit violations (L_mem=%.4g MB)\n", limit)
	fmt.Fprint(opts.Out, report.ASCIIChart("cumulative violations (median)", names, series, 64, 12))
	if err := opts.writeCSV("violations.csv", names, series); err != nil {
		return nil, err
	}
	return out, nil
}

// scaleNInit shrinks the paper's n_init values proportionally for smaller
// test datasets so experiments remain runnable end to end.
func scaleNInit(ds *dataset.Dataset, paperValue int) int {
	if ds.Len() >= 600 {
		return paperValue
	}
	v := paperValue * ds.Len() / 600
	if v < 1 {
		v = 1
	}
	return v
}
