package experiments

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"alamr/internal/dataset"
)

// tinyDataset builds a structured synthetic dataset small enough for fast
// end-to-end experiment runs.
func tinyDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	combos := dataset.AllCombos()
	ds := &dataset.Dataset{}
	for i := 0; i < n; i++ {
		c := combos[rng.Intn(len(combos))]
		wall := 3.0 * math.Pow(float64(c.Mx)/8, 1.4) * math.Pow(2, float64(c.MaxLevel-3)) *
			(1 + c.R0) / (0.3 + c.RhoIn) * math.Exp(rng.NormFloat64()*0.05)
		ds.Jobs = append(ds.Jobs, dataset.Job{
			P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
			WallSec: wall,
			CostNH:  wall * float64(c.P) / 3600,
			MemMB: 0.08 * float64(c.Mx*c.Mx) / 64 * math.Pow(2, float64(c.MaxLevel-3)) /
				math.Sqrt(float64(c.P)) * math.Exp(rng.NormFloat64()*0.02),
		})
	}
	return ds
}

func tinyOpts(t *testing.T, ds *dataset.Dataset, buf *bytes.Buffer) Options {
	t.Helper()
	return Options{
		Dataset:       ds,
		Out:           buf,
		Partitions:    2,
		MaxIterations: 8,
		NTest:         25,
		Seed:          3,
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := TableI(Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestTableI(t *testing.T) {
	ds := tinyDataset(80, 1)
	var buf bytes.Buffer
	rows, err := TableI(tinyOpts(t, ds, &buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := buf.String()
	for _, want := range []string{"Table I", "cost, node-hours", "cost ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1(t *testing.T) {
	ds := tinyDataset(60, 2)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	stats, err := Fig1(opts, Fig1Config{Levels: []int{1, 2}, TEnd: 0.02, Mx: 8, Width: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("levels = %d", len(stats))
	}
	// More refinement must cost more work.
	if stats[1].CellUpdates <= stats[0].CellUpdates {
		t.Fatalf("level 2 not more expensive: %d vs %d", stats[1].CellUpdates, stats[0].CellUpdates)
	}
	if !strings.Contains(buf.String(), "maxlevel=2") {
		t.Fatal("render output missing")
	}
}

func TestFig2(t *testing.T) {
	ds := tinyDataset(100, 3)
	var buf bytes.Buffer
	csvDir := t.TempDir()
	opts := tinyOpts(t, ds, &buf)
	opts.CSVDir = csvDir
	violins, err := Fig2(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"RandUniform", "MaxSigma", "MinPred", "RandGoodness"} {
		v, ok := violins[name]
		if !ok {
			t.Fatalf("missing violin for %s", name)
		}
		if v.N != 8 {
			t.Fatalf("%s selected %d samples want 8", name, v.N)
		}
	}
	// The cost-greedy policy's selections should have a lower median cost
	// than uniform sampling.
	if violins["MinPred"].Median >= violins["RandUniform"].Median {
		t.Fatalf("MinPred median %g not below RandUniform %g",
			violins["MinPred"].Median, violins["RandUniform"].Median)
	}
}

func TestFig3(t *testing.T) {
	ds := tinyDataset(100, 4)
	var buf bytes.Buffer
	res, err := Fig3(tinyOpts(t, ds, &buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bands) != 7 {
		t.Fatalf("bands = %d want 7", len(res.Bands))
	}
	if res.Limit <= 0 {
		t.Fatal("no memory limit")
	}
	// Regret curves are monotone.
	for key, b := range res.Bands {
		for i := 1; i < len(b.Mid); i++ {
			if b.Mid[i] < b.Mid[i-1]-1e-12 {
				t.Fatalf("%s regret not monotone", key)
			}
		}
	}
	if !strings.Contains(buf.String(), "cumulative regret") {
		t.Fatal("missing chart")
	}
}

func TestFig4(t *testing.T) {
	ds := tinyDataset(100, 5)
	var buf bytes.Buffer
	res, err := Fig4(tinyOpts(t, ds, &buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CostRMSE) != 7 || len(res.MemRMSE) != 7 || len(res.CumCost) != 7 {
		t.Fatalf("result sizes: %d/%d/%d", len(res.CostRMSE), len(res.MemRMSE), len(res.CumCost))
	}
	for key, b := range res.CostRMSE {
		for _, v := range b.Mid {
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("%s has invalid RMSE %g", key, v)
			}
		}
	}
}

func TestViolationTimeline(t *testing.T) {
	ds := tinyDataset(100, 6)
	var buf bytes.Buffer
	curves, err := ViolationTimeline(tinyOpts(t, ds, &buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d want 4", len(curves))
	}
	for key, c := range curves {
		for i := 1; i < len(c); i++ {
			if c[i] < c[i-1] {
				t.Fatalf("%s cumulative violations not monotone", key)
			}
		}
	}
}

func TestKernelAblation(t *testing.T) {
	ds := tinyDataset(80, 7)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	opts.MaxIterations = 5
	res, err := KernelAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalCostRMSE) != 4 {
		t.Fatalf("variants = %d want 4", len(res.FinalCostRMSE))
	}
	for name, v := range res.FinalCostRMSE {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("%s RMSE = %g", name, v)
		}
	}
}

func TestLog2PAblation(t *testing.T) {
	ds := tinyDataset(80, 8)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	opts.MaxIterations = 5
	res, err := Log2PAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalCostRMSE) != 2 {
		t.Fatalf("variants = %d", len(res.FinalCostRMSE))
	}
}

func TestGoodnessBaseAblation(t *testing.T) {
	ds := tinyDataset(80, 9)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	opts.MaxIterations = 5
	res, err := GoodnessBaseAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalCostRMSE) != 3 {
		t.Fatalf("variants = %d", len(res.FinalCostRMSE))
	}
}

func TestMemLimitSensitivity(t *testing.T) {
	ds := tinyDataset(80, 10)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	opts.MaxIterations = 5
	res, err := MemLimitSensitivity(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("quantiles = %d", len(res))
	}
}

func TestHyperoptCadenceAblation(t *testing.T) {
	ds := tinyDataset(70, 11)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	opts.MaxIterations = 4
	res, err := HyperoptCadenceAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalCostRMSE) != 4 {
		t.Fatalf("variants = %d", len(res.FinalCostRMSE))
	}
}

func TestScaleNInit(t *testing.T) {
	big := &dataset.Dataset{Jobs: make([]dataset.Job, 600)}
	if scaleNInit(big, 50) != 50 {
		t.Fatal("full-size dataset should keep paper values")
	}
	small := &dataset.Dataset{Jobs: make([]dataset.Job, 60)}
	if got := scaleNInit(small, 50); got != 5 {
		t.Fatalf("scaled = %d want 5", got)
	}
	if got := scaleNInit(small, 1); got != 1 {
		t.Fatalf("floor = %d want 1", got)
	}
}

func TestBatchSizeStudy(t *testing.T) {
	ds := tinyDataset(90, 12)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	opts.MaxIterations = 8
	rows, err := BatchSizeStudy(opts, []int{1, 4}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Larger batches shorten the campaign: q=4 makespan must not exceed
	// q=1 (same number of selections, 4-way concurrency per round).
	if rows[1].CampaignMakespan > rows[0].CampaignMakespan {
		t.Fatalf("q=4 makespan %g exceeds q=1 %g", rows[1].CampaignMakespan, rows[0].CampaignMakespan)
	}
	if !strings.Contains(buf.String(), "batch-mode AL study") {
		t.Fatal("missing table")
	}
}

func TestSurrogateAblation(t *testing.T) {
	ds := tinyDataset(110, 13)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	opts.MaxIterations = 5
	res, err := SurrogateAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalCostRMSE) != 4 {
		t.Fatalf("variants = %d", len(res.FinalCostRMSE))
	}
}

func TestWeightedErrorStudy(t *testing.T) {
	ds := tinyDataset(100, 14)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	opts.MaxIterations = 8
	rows, err := WeightedErrorStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.UniformRMSE) || math.IsNaN(r.CostWeighted) || r.UniformRMSE <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "cost-weighted") {
		t.Fatal("missing table")
	}
}

func TestOnlineStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("online study runs real physics in -short mode")
	}
	ds := tinyDataset(90, 15)
	var buf bytes.Buffer
	opts := tinyOpts(t, ds, &buf)
	rows, err := OnlineStudy(opts, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MedianCost <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "online mode") {
		t.Fatal("missing table")
	}
}
