package experiments

import (
	"fmt"
	"sort"

	"alamr/internal/core"
	"alamr/internal/gp"
	"alamr/internal/kernel"
	"alamr/internal/report"
	"alamr/internal/stats"
)

// AblationResult maps a variant name to its final median cost RMSE and
// cumulative cost.
type AblationResult struct {
	FinalCostRMSE map[string]float64
	FinalCumCost  map[string]float64
}

// KernelAblation compares the paper's isotropic RBF against the kernels its
// future-work section proposes: anisotropic (ARD) RBF and Matérn 3/2 & 5/2,
// all under the RandGoodness policy.
func KernelAblation(opts Options) (*AblationResult, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	variants := map[string]kernel.Kernel{
		"RBF":       kernel.NewRBF(0.5, 1),
		"ARD-RBF":   kernel.NewARDRBF([]float64{0.5, 0.5, 0.5, 0.5, 0.5}, 1),
		"Matern3/2": kernel.NewMatern(1.5, 0.5, 1),
		"Matern5/2": kernel.NewMatern(2.5, 0.5, 1),
	}
	return runVariants(opts, "kernel ablation", variants, func(tpl *core.LoopConfig, k kernel.Kernel) {
		tpl.Kernel = k
	})
}

// Log2PAblation compares linear p scaling against the log2(p) feature
// transform proposed in §V-D.
func Log2PAblation(opts Options) (*AblationResult, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	variants := map[string]bool{"linear-p": false, "log2-p": true}
	res := &AblationResult{FinalCostRMSE: map[string]float64{}, FinalCumCost: map[string]float64{}}
	tb := &report.Table{Header: []string{"variant", "final cost RMSE (median)", "final CC (median)"}}
	for _, name := range sortedKeys(variants) {
		opt := variants[name]
		groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
			Specs:      []core.BatchSpec{{Policy: core.RandGoodness{}, NInit: scaleNInit(opts.Dataset, 50)}},
			NTest:      opts.NTest,
			Partitions: opts.Partitions,
			Workers:    opts.Workers,
			Seed:       opts.Seed + 5,
			Template: core.LoopConfig{
				MaxIterations: opts.MaxIterations,
				HyperoptEvery: opts.HyperoptEvery,
				Log2P:         opt,
			},
		})
		if err != nil {
			return nil, err
		}
		for _, trs := range groups {
			recordVariant(res, tb, name, trs)
		}
	}
	fmt.Fprintln(opts.Out, "§V-D ablation: log2(p) feature transform")
	return res, tb.Write(opts.Out)
}

// GoodnessBaseAblation sweeps the RandGoodness base (the paper argues for
// 10; higher bases skew harder toward cheap candidates).
func GoodnessBaseAblation(opts Options) (*AblationResult, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	res := &AblationResult{FinalCostRMSE: map[string]float64{}, FinalCumCost: map[string]float64{}}
	tb := &report.Table{Header: []string{"variant", "final cost RMSE (median)", "final CC (median)"}}
	for _, base := range []float64{2, 10, 100} {
		name := fmt.Sprintf("base=%g", base)
		groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
			Specs:      []core.BatchSpec{{Policy: core.RandGoodness{Base: base}, NInit: scaleNInit(opts.Dataset, 50)}},
			NTest:      opts.NTest,
			Partitions: opts.Partitions,
			Workers:    opts.Workers,
			Seed:       opts.Seed + 6,
			Template: core.LoopConfig{
				MaxIterations: opts.MaxIterations,
				HyperoptEvery: opts.HyperoptEvery,
			},
		})
		if err != nil {
			return nil, err
		}
		for _, trs := range groups {
			recordVariant(res, tb, name, trs)
		}
	}
	fmt.Fprintln(opts.Out, "ablation: RandGoodness base")
	return res, tb.Write(opts.Out)
}

// MemLimitSensitivity sweeps the memory limit across dataset quantiles and
// reports RGMA's regret and early-termination behaviour — an analysis the
// paper motivates but does not include.
func MemLimitSensitivity(opts Options) (map[string]float64, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	mem := opts.Dataset.Mem(nil)
	out := make(map[string]float64)
	tb := &report.Table{Header: []string{"L_mem quantile", "L_mem (MB)", "median final CR", "median iterations", "early stops"}}
	for _, q := range []float64{0.5, 0.75, 0.9, 0.97} {
		limit := stats.Quantile(mem, q)
		groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
			Specs:      []core.BatchSpec{{Policy: core.RGMA{}, NInit: scaleNInit(opts.Dataset, 50)}},
			NTest:      opts.NTest,
			Partitions: opts.Partitions,
			Workers:    opts.Workers,
			Seed:       opts.Seed + 7,
			Template: core.LoopConfig{
				MaxIterations: opts.MaxIterations,
				HyperoptEvery: opts.HyperoptEvery,
				MemLimitMB:    limit,
			},
		})
		if err != nil {
			return nil, err
		}
		for _, trs := range groups {
			finals := make([]float64, len(trs))
			iters := make([]float64, len(trs))
			early := 0
			for i, tr := range trs {
				if n := len(tr.CumRegret); n > 0 {
					finals[i] = tr.CumRegret[n-1]
				}
				iters[i] = float64(tr.Iterations())
				if tr.Reason == core.StopMemoryLimit {
					early++
				}
			}
			name := fmt.Sprintf("q=%.2f", q)
			out[name] = stats.Median(finals)
			tb.Add(name, limit, stats.Median(finals), stats.Median(iters), early)
		}
	}
	fmt.Fprintln(opts.Out, "ablation: memory-limit sensitivity (RGMA)")
	return out, tb.Write(opts.Out)
}

// SubcyclingAblation is covered in the amr/cluster packages; this variant
// compares HyperoptEvery cadences (model quality vs loop cost).
func HyperoptCadenceAblation(opts Options) (*AblationResult, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	res := &AblationResult{FinalCostRMSE: map[string]float64{}, FinalCumCost: map[string]float64{}}
	tb := &report.Table{Header: []string{"variant", "final cost RMSE (median)", "final CC (median)"}}
	for _, every := range []int{1, 5, 10, 25} {
		name := fmt.Sprintf("hyperopt-every=%d", every)
		groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
			Specs:      []core.BatchSpec{{Policy: core.RandGoodness{}, NInit: scaleNInit(opts.Dataset, 50)}},
			NTest:      opts.NTest,
			Partitions: opts.Partitions,
			Workers:    opts.Workers,
			Seed:       opts.Seed + 8,
			Template: core.LoopConfig{
				MaxIterations: opts.MaxIterations,
				HyperoptEvery: every,
			},
		})
		if err != nil {
			return nil, err
		}
		for _, trs := range groups {
			recordVariant(res, tb, name, trs)
		}
	}
	fmt.Fprintln(opts.Out, "ablation: hyperparameter refit cadence")
	return res, tb.Write(opts.Out)
}

func runVariants(opts Options, title string, variants map[string]kernel.Kernel, apply func(*core.LoopConfig, kernel.Kernel)) (*AblationResult, error) {
	res := &AblationResult{FinalCostRMSE: map[string]float64{}, FinalCumCost: map[string]float64{}}
	tb := &report.Table{Header: []string{"variant", "final cost RMSE (median)", "final CC (median)"}}
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tpl := core.LoopConfig{
			MaxIterations: opts.MaxIterations,
			HyperoptEvery: opts.HyperoptEvery,
		}
		apply(&tpl, variants[name])
		groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
			Specs:      []core.BatchSpec{{Policy: core.RandGoodness{}, NInit: scaleNInit(opts.Dataset, 50)}},
			NTest:      opts.NTest,
			Partitions: opts.Partitions,
			Workers:    opts.Workers,
			Seed:       opts.Seed + 4,
			Template:   tpl,
		})
		if err != nil {
			return nil, err
		}
		for _, trs := range groups {
			recordVariant(res, tb, name, trs)
		}
	}
	fmt.Fprintln(opts.Out, title)
	return res, tb.Write(opts.Out)
}

func recordVariant(res *AblationResult, tb *report.Table, name string, trs []*core.Trajectory) {
	finalsR := make([]float64, 0, len(trs))
	finalsC := make([]float64, 0, len(trs))
	for _, tr := range trs {
		if n := len(tr.CostRMSE); n > 0 {
			finalsR = append(finalsR, tr.CostRMSE[n-1])
			finalsC = append(finalsC, tr.CumCost[n-1])
		}
	}
	mr, mc := stats.Median(finalsR), stats.Median(finalsC)
	res.FinalCostRMSE[name] = mr
	res.FinalCumCost[name] = mc
	tb.Add(name, mr, mc)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SurrogateAblation compares the paper's single global GP against the
// partitioned local-model (treed GP) surrogate its future work proposes.
func SurrogateAblation(opts Options) (*AblationResult, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	res := &AblationResult{FinalCostRMSE: map[string]float64{}, FinalCumCost: map[string]float64{}}
	tb := &report.Table{Header: []string{"variant", "final cost RMSE (median)", "final CC (median)"}}
	variants := []struct {
		name  string
		model func() gp.Model
	}{
		{"flat-gp", nil},
		{"treed-gp-64", func() gp.Model {
			return gp.NewTreed(kernel.NewRBF(0.5, 1), gp.Config{Noise: 0.1, NormalizeY: true}, 64)
		}},
		{"treed-gp-32", func() gp.Model {
			return gp.NewTreed(kernel.NewRBF(0.5, 1), gp.Config{Noise: 0.1, NormalizeY: true}, 32)
		}},
		{"sparse-gp-48", func() gp.Model {
			return gp.NewSparse(kernel.NewRBF(0.5, 1), gp.Config{Noise: 0.1, NormalizeY: true}, 48)
		}},
	}
	for _, v := range variants {
		groups, err := core.RunBatch(opts.Dataset, core.BatchConfig{
			Specs:      []core.BatchSpec{{Policy: core.RandGoodness{}, NInit: scaleNInit(opts.Dataset, 50)}},
			NTest:      opts.NTest,
			Partitions: opts.Partitions,
			Workers:    opts.Workers,
			Seed:       opts.Seed + 10,
			Template: core.LoopConfig{
				MaxIterations: opts.MaxIterations,
				HyperoptEvery: opts.HyperoptEvery,
				NewModel:      v.model,
			},
		})
		if err != nil {
			return nil, err
		}
		for _, trs := range groups {
			recordVariant(res, tb, v.name, trs)
		}
	}
	fmt.Fprintln(opts.Out, "ablation: surrogate model (flat vs treed local models)")
	return res, tb.Write(opts.Out)
}
