package experiments

import (
	"fmt"
	"math"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/online"
	"alamr/internal/report"
	"alamr/internal/stats"
)

// OnlineStudyRow summarizes repeated online campaigns for one policy.
type OnlineStudyRow struct {
	Policy        string
	MedianCost    float64 // node-hours spent per campaign
	MedianRegret  float64
	MedianMAPE    float64 // one-step-ahead cost MAPE
	MedianRefRuns float64 // physics references the lab had to simulate
}

// onlineCell is one repetition's summary.
type onlineCell struct {
	cost, regret  float64
	hasFinal      bool
	mape          float64
	hasMAPE       bool
	refsSimulated float64
}

// OnlineStudy runs repeated online campaigns (the §IV "online" mode) against
// a shared simulation-backed lab and compares policies on spend, regret,
// one-step prediction error, and how much fresh physics each policy forces
// the lab to simulate. It complements the offline figures: here there is no
// precomputed pool, the learner roams the full 1920-point grid.
//
// The campaigns run as one engine sweep with Workers=1: the lab is shared
// and mutable (reference cache plus the run counter seeding per-run
// measurement noise), so strictly sequential dispatch in item order keeps
// the noise stream — and thus every result — identical to a nested loop.
func OnlineStudy(opts Options, experimentsPerRun, repetitions int) ([]OnlineStudyRow, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if experimentsPerRun <= 0 {
		experimentsPerRun = 20
	}
	if repetitions <= 0 {
		repetitions = 3
	}
	policies := []core.Policy{core.RandUniform{}, core.RandGoodness{}, core.RGMA{}}

	// One lab per study: reference solutions are shared across repetitions
	// and policies, exactly as a real campaign would reuse prior physics.
	lab := online.NewSimLab(online.SimLabConfig{RefNx: 48, RefTEnd: 0.1, RefSnaps: 4, Seed: opts.Seed})
	memLimit := core.PaperMemLimitMB(opts.Dataset)

	var items []engine.SweepItem
	for pi, p := range policies {
		for r := 0; r < repetitions; r++ {
			p, seed := p, stats.SplitSeed(opts.Seed+12, r*10+pi)
			items = append(items, engine.SweepItem{
				ID: fmt.Sprintf("online/%s/rep=%d", p.Name(), r),
				Run: func(scope *engine.CampaignObs) (any, error) {
					before := lab.NumReferenceRuns()
					res, err := online.Run(lab, online.Config{
						Policy:         p,
						MaxExperiments: experimentsPerRun,
						MemLimitMB:     memLimit,
						Seed:           seed,
						InitDesign: []dataset.Combo{
							{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1},
						},
						Campaign: scope,
					})
					if err != nil {
						return nil, err
					}
					cell := onlineCell{refsSimulated: float64(lab.NumReferenceRuns() - before)}
					if n := len(res.CumCost); n > 0 {
						cell.cost, cell.regret, cell.hasFinal = res.CumCost[n-1], res.CumRegret[n-1], true
					}
					if m := res.OneStepMAPE(); !math.IsNaN(m) {
						cell.mape, cell.hasMAPE = m, true
					}
					return cell, nil
				},
			})
		}
	}
	results, err := engine.Sweep(engine.SweepConfig{Workers: 1, Items: items})
	if err != nil {
		return nil, err
	}

	var rows []OnlineStudyRow
	tb := &report.Table{Header: []string{"policy", "median cost (nh)", "median regret", "median 1-step MAPE", "refs simulated"}}
	for pi, p := range policies {
		var cost, regret, mape, refs []float64
		for r := 0; r < repetitions; r++ {
			cell := results[pi*repetitions+r].Value.(onlineCell)
			if cell.hasFinal {
				cost = append(cost, cell.cost)
				regret = append(regret, cell.regret)
			}
			if cell.hasMAPE {
				mape = append(mape, cell.mape)
			}
			refs = append(refs, cell.refsSimulated)
		}
		row := OnlineStudyRow{
			Policy:        p.Name(),
			MedianCost:    stats.Median(cost),
			MedianRegret:  stats.Median(regret),
			MedianMAPE:    stats.Median(mape),
			MedianRefRuns: stats.Median(refs),
		}
		rows = append(rows, row)
		tb.Add(row.Policy, row.MedianCost, row.MedianRegret,
			fmt.Sprintf("%.0f%%", 100*row.MedianMAPE), row.MedianRefRuns)
	}
	fmt.Fprintf(opts.Out, "online mode: %d campaigns of %d experiments per policy (shared lab)\n",
		repetitions, experimentsPerRun)
	return rows, tb.Write(opts.Out)
}
