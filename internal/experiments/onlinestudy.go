package experiments

import (
	"fmt"
	"math"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/online"
	"alamr/internal/report"
	"alamr/internal/stats"
)

// OnlineStudyRow summarizes repeated online campaigns for one policy.
type OnlineStudyRow struct {
	Policy        string
	MedianCost    float64 // node-hours spent per campaign
	MedianRegret  float64
	MedianMAPE    float64 // one-step-ahead cost MAPE
	MedianRefRuns float64 // physics references the lab had to simulate
}

// OnlineStudy runs repeated online campaigns (the §IV "online" mode) against
// a shared simulation-backed lab and compares policies on spend, regret,
// one-step prediction error, and how much fresh physics each policy forces
// the lab to simulate. It complements the offline figures: here there is no
// precomputed pool, the learner roams the full 1920-point grid.
func OnlineStudy(opts Options, experimentsPerRun, repetitions int) ([]OnlineStudyRow, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if experimentsPerRun <= 0 {
		experimentsPerRun = 20
	}
	if repetitions <= 0 {
		repetitions = 3
	}
	policies := []core.Policy{core.RandUniform{}, core.RandGoodness{}, core.RGMA{}}

	// One lab per study: reference solutions are shared across repetitions
	// and policies, exactly as a real campaign would reuse prior physics.
	lab := online.NewSimLab(online.SimLabConfig{RefNx: 48, RefTEnd: 0.1, RefSnaps: 4, Seed: opts.Seed})
	memLimit := core.PaperMemLimitMB(opts.Dataset)

	var rows []OnlineStudyRow
	tb := &report.Table{Header: []string{"policy", "median cost (nh)", "median regret", "median 1-step MAPE", "refs simulated"}}
	for _, p := range policies {
		var cost, regret, mape, refs []float64
		for r := 0; r < repetitions; r++ {
			before := lab.NumReferenceRuns()
			res, err := online.Run(lab, online.Config{
				Policy:         p,
				MaxExperiments: experimentsPerRun,
				MemLimitMB:     memLimit,
				Seed:           stats.SplitSeed(opts.Seed+12, r*10+len(rows)),
				InitDesign: []dataset.Combo{
					{P: 8, Mx: 16, MaxLevel: 4, R0: 0.3, RhoIn: 0.1},
				},
			})
			if err != nil {
				return nil, err
			}
			if n := len(res.CumCost); n > 0 {
				cost = append(cost, res.CumCost[n-1])
				regret = append(regret, res.CumRegret[n-1])
			}
			if m := res.OneStepMAPE(); !math.IsNaN(m) {
				mape = append(mape, m)
			}
			refs = append(refs, float64(lab.NumReferenceRuns()-before))
		}
		row := OnlineStudyRow{
			Policy:        p.Name(),
			MedianCost:    stats.Median(cost),
			MedianRegret:  stats.Median(regret),
			MedianMAPE:    stats.Median(mape),
			MedianRefRuns: stats.Median(refs),
		}
		rows = append(rows, row)
		tb.Add(row.Policy, row.MedianCost, row.MedianRegret,
			fmt.Sprintf("%.0f%%", 100*row.MedianMAPE), row.MedianRefRuns)
	}
	fmt.Fprintf(opts.Out, "online mode: %d campaigns of %d experiments per policy (shared lab)\n",
		repetitions, experimentsPerRun)
	return rows, tb.Write(opts.Out)
}
