package experiments

import (
	"fmt"
	"math/rand"

	"alamr/internal/cluster"
	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/report"
	"alamr/internal/stats"
)

// BatchSizeRow summarizes one q value of the batch-mode study.
type BatchSizeRow struct {
	Q                int
	FinalCostRMSE    float64 // median across partitions
	FinalCumCost     float64
	CampaignMakespan float64 // seconds, via the queue model
	QueueWait        float64
}

// BatchSizeStudy quantifies the trade-off the paper's future work poses for
// batch-mode AL: larger selection batches are less greedy (the models are
// stale within a round) but the q jobs of each round run concurrently on the
// machine, shortening the campaign. Selection quality comes from
// RunBatchTrajectory; campaign wall-clock comes from replaying the selected
// jobs through the FIFO+backfill queue model, with each round's jobs
// submitted together once the previous round finished.
//
// The (q, partition) grid runs as one engine sweep: partitions are split up
// front (so the full grid is declared before anything executes) and the
// trajectories run concurrently with per-campaign isolation.
func BatchSizeStudy(opts Options, qs []int, queueNodes int) ([]BatchSizeRow, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if len(qs) == 0 {
		qs = []int{1, 2, 4, 8}
	}
	if queueNodes <= 0 {
		queueNodes = 64
	}
	nInit := scaleNInit(opts.Dataset, 50)

	var items []engine.SweepItem
	for _, q := range qs {
		for pi := 0; pi < opts.Partitions; pi++ {
			rng := rand.New(rand.NewSource(stats.SplitSeed(opts.Seed+9, pi*100+q)))
			part, err := dataset.Split(opts.Dataset, nInit, opts.NTest, rng)
			if err != nil {
				return nil, err
			}
			q, seed := q, stats.SplitSeed(opts.Seed+9, 7000+pi*100+q)
			items = append(items, engine.SweepItem{
				ID: fmt.Sprintf("batch/q=%d/part=%d", q, pi),
				Run: func(scope *engine.CampaignObs) (any, error) {
					return core.RunBatchTrajectory(opts.Dataset, part, core.LoopConfig{
						Policy:        core.RandGoodness{},
						MaxIterations: opts.MaxIterations,
						HyperoptEvery: opts.HyperoptEvery,
						Seed:          seed,
						Campaign:      scope,
					}, q, core.BatchConstantLiar)
				},
			})
		}
	}
	results, err := engine.Sweep(engine.SweepConfig{Workers: opts.Workers, Items: items})
	if err != nil {
		return nil, err
	}

	var rows []BatchSizeRow
	tb := &report.Table{Header: []string{"q", "final cost RMSE (median)", "final CC (median)", "campaign makespan (h)", "queue wait (h)"}}
	for qi, q := range qs {
		finalsR := make([]float64, 0, opts.Partitions)
		finalsC := make([]float64, 0, opts.Partitions)
		spans := make([]float64, 0, opts.Partitions)
		waits := make([]float64, 0, opts.Partitions)
		for pi := 0; pi < opts.Partitions; pi++ {
			tr := results[qi*opts.Partitions+pi].Value.(*core.Trajectory)
			n := tr.Iterations()
			if n == 0 {
				continue
			}
			finalsR = append(finalsR, tr.CostRMSE[n-1])
			finalsC = append(finalsC, tr.CumCost[n-1])

			makespan, wait, err := campaignMakespan(opts.Dataset, tr, q, queueNodes)
			if err != nil {
				return nil, err
			}
			spans = append(spans, makespan)
			waits = append(waits, wait)
		}
		row := BatchSizeRow{
			Q:                q,
			FinalCostRMSE:    stats.Median(finalsR),
			FinalCumCost:     stats.Median(finalsC),
			CampaignMakespan: stats.Median(spans),
			QueueWait:        stats.Median(waits),
		}
		rows = append(rows, row)
		tb.Add(fmt.Sprintf("%d", q), row.FinalCostRMSE, row.FinalCumCost,
			row.CampaignMakespan/3600, row.QueueWait/3600)
	}
	fmt.Fprintln(opts.Out, "batch-mode AL study (future work §VI): selection quality vs campaign wall-clock")
	return rows, tb.Write(opts.Out)
}

// campaignMakespan replays a trajectory's selections as queue submissions:
// each round's q jobs are submitted when the previous round completes
// (sequential AL is the q=1 special case).
func campaignMakespan(ds *dataset.Dataset, tr *core.Trajectory, q, queueNodes int) (makespan, wait float64, err error) {
	queue := cluster.Queue{TotalNodes: queueNodes}
	clock := 0.0
	var totalWait float64
	for start := 0; start < len(tr.Selected); start += q {
		end := start + q
		if end > len(tr.Selected) {
			end = len(tr.Selected)
		}
		jobs := make([]cluster.QueuedJob, 0, end-start)
		for _, idx := range tr.Selected[start:end] {
			j := ds.Jobs[idx]
			nodes := j.P
			if nodes > queueNodes {
				nodes = queueNodes
			}
			jobs = append(jobs, cluster.QueuedJob{Nodes: nodes, WallSec: j.WallSec})
		}
		s, err := queue.Schedule(jobs)
		if err != nil {
			return 0, 0, err
		}
		clock += s.Makespan
		totalWait += s.WaitSec
	}
	return clock, totalWait, nil
}
