package stats

import "math/rand"

// CountingSource wraps a math/rand source and counts how many values have
// been drawn from it. The count is the "stream position" a campaign
// checkpoint records: recreating the source from the same seed and calling
// Skip with the recorded count restores the generator to the exact state it
// had when the checkpoint was written, so a resumed run draws the same
// future values as an uninterrupted one.
type CountingSource struct {
	src rand.Source64
	n   uint64
}

// NewCountingSource creates a counting source seeded like rand.NewSource.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

// Seed implements rand.Source and resets the draw count.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// Draws reports how many values have been drawn since creation or Seed.
func (s *CountingSource) Draws() uint64 { return s.n }

// Skip advances the source by n draws without exposing the values. The
// default math/rand source advances its state identically for Int63 and
// Uint64, so skipping is equivalent to replaying any mix of draws.
func (s *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Int63()
	}
	s.n += n
}
