package stats

import (
	"math/rand"
	"testing"
)

func TestCountingSourceCounts(t *testing.T) {
	src := NewCountingSource(42)
	rng := rand.New(src)
	for i := 0; i < 10; i++ {
		rng.Float64()
	}
	if src.Draws() != 10 {
		t.Fatalf("draws = %d want 10", src.Draws())
	}
	rng.Shuffle(100, func(i, j int) {})
	if src.Draws() <= 10 {
		t.Fatalf("shuffle consumed no draws (draws=%d)", src.Draws())
	}
}

// TestCountingSourceSkipRestoresStream is the checkpoint/resume contract:
// skip(n) on a fresh source must land exactly where n mixed draws left off.
func TestCountingSourceSkipRestoresStream(t *testing.T) {
	a := NewCountingSource(7)
	rngA := rand.New(a)
	// A realistic mix of draw kinds a policy makes.
	for i := 0; i < 5; i++ {
		rngA.Float64()
		rngA.Intn(37)
		rngA.Uint64()
	}
	pos := a.Draws()

	b := NewCountingSource(7)
	b.Skip(pos)
	if b.Draws() != pos {
		t.Fatalf("skip position = %d want %d", b.Draws(), pos)
	}
	rngB := rand.New(b)
	for i := 0; i < 20; i++ {
		va, vb := rngA.Float64(), rngB.Float64()
		if va != vb {
			t.Fatalf("draw %d diverged: %v vs %v", i, va, vb)
		}
	}
}

func TestCountingSourceSeedResets(t *testing.T) {
	s := NewCountingSource(1)
	rand.New(s).Float64()
	s.Seed(1)
	if s.Draws() != 0 {
		t.Fatalf("draws after Seed = %d", s.Draws())
	}
}
