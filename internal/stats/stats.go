// Package stats provides the descriptive statistics, sampling utilities, and
// aggregation helpers used by the active-learning evaluation: quantiles,
// moments, histograms, violin-style distribution summaries, discrete
// probability sampling, and deterministic RNG stream splitting.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of x. It panics on an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		panic("stats: Mean of empty slice")
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the unbiased sample variance of x (n-1 denominator).
// It panics when len(x) < 2.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		panic("stats: Variance needs at least two samples")
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x)-1)
}

// StdDev returns the sample standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Min returns the smallest element of x. It panics on an empty slice.
func Min(x []float64) float64 {
	if len(x) == 0 {
		panic("stats: Min of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest element of x. It panics on an empty slice.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("stats: Max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-th quantile of x for q in [0,1], using linear
// interpolation between order statistics (the same convention as numpy's
// default). It panics on an empty slice or q outside [0,1].
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g outside [0,1]", q))
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile of x.
func Median(x []float64) float64 { return Quantile(x, 0.5) }

// IQR returns the interquartile range (Q3 - Q1) of x.
func IQR(x []float64) float64 {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return quantileSorted(s, 0.75) - quantileSorted(s, 0.25)
}

// RMSE returns the root-mean-square error between predictions and targets.
// It panics when lengths differ or are zero.
func RMSE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stats: RMSE length mismatch")
	}
	if len(pred) == 0 {
		panic("stats: RMSE of empty slices")
	}
	var s float64
	for i := range pred {
		d := pred[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// WeightedRMSE returns sqrt(Σ wᵢ eᵢ² / Σ wᵢ) for e = pred-actual, the
// non-uniform error metric discussed in the paper (§V-D, eq. 12): larger
// weights prioritize accuracy for the corresponding samples.
func WeightedRMSE(pred, actual, w []float64) float64 {
	if len(pred) != len(actual) || len(pred) != len(w) {
		panic("stats: WeightedRMSE length mismatch")
	}
	if len(pred) == 0 {
		panic("stats: WeightedRMSE of empty slices")
	}
	var num, den float64
	for i := range pred {
		d := pred[i] - actual[i]
		num += w[i] * d * d
		den += w[i]
	}
	if den <= 0 {
		panic("stats: WeightedRMSE with non-positive total weight")
	}
	return math.Sqrt(num / den)
}

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		panic("stats: MAE length mismatch or empty")
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - actual[i])
	}
	return s / float64(len(pred))
}

// Summary holds the five-number summary plus mean for a sample, matching the
// columns the paper reports in Table I.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Mean   float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of x. It panics on an empty slice.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		panic("stats: Summarize of empty slice")
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Mean:   Mean(s),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// Histogram bins x into nbins equal-width bins over [min,max] and returns
// the bin counts together with the bin edges (nbins+1 values). Values equal
// to max land in the last bin.
func Histogram(x []float64, nbins int) (counts []int, edges []float64) {
	if nbins <= 0 {
		panic("stats: Histogram needs nbins > 0")
	}
	if len(x) == 0 {
		panic("stats: Histogram of empty slice")
	}
	lo, hi := Min(x), Max(x)
	if lo == hi {
		hi = lo + 1
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	for _, v := range x {
		b := int((v - lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges
}

// ViolinSummary describes a sample's distribution the way the paper's
// violin plots do (Fig 2): median, interquartile range, extremes, and a
// smoothed density profile suitable for rendering the violin outline.
type ViolinSummary struct {
	Summary
	// Density holds the kernel density estimate evaluated at Grid points
	// spanning [Min, Max]; the widths of the violin at each height.
	Grid    []float64
	Density []float64
}

// Violin computes a ViolinSummary with a Gaussian KDE evaluated at npoints
// grid points. Bandwidth follows Scott's rule; a floor avoids zero bandwidth
// for constant samples.
func Violin(x []float64, npoints int) ViolinSummary {
	if npoints < 2 {
		panic("stats: Violin needs npoints >= 2")
	}
	sum := Summarize(x)
	grid := make([]float64, npoints)
	dens := make([]float64, npoints)
	span := sum.Max - sum.Min
	if span == 0 {
		span = 1
	}
	var sd float64
	if len(x) >= 2 {
		sd = StdDev(x)
	}
	bw := sd * math.Pow(float64(len(x)), -0.2)
	if bw <= 0 {
		bw = span / 10
	}
	for i := range grid {
		grid[i] = sum.Min + span*float64(i)/float64(npoints-1)
		var d float64
		for _, v := range x {
			z := (grid[i] - v) / bw
			d += math.Exp(-0.5 * z * z)
		}
		dens[i] = d / (float64(len(x)) * bw * math.Sqrt(2*math.Pi))
	}
	return ViolinSummary{Summary: sum, Grid: grid, Density: dens}
}

// SampleDiscrete draws an index from the (unnormalized, non-negative) weight
// vector w using rng. It panics when all weights are zero or any is
// negative/non-finite.
func SampleDiscrete(rng *rand.Rand, w []float64) int {
	var total float64
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("stats: invalid weight w[%d]=%g", i, v))
		}
		total += v
	}
	if total <= 0 {
		panic("stats: SampleDiscrete with zero total weight")
	}
	u := rng.Float64() * total
	var acc float64
	for i, v := range w {
		acc += v
		if u < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] > 0 {
			return i
		}
	}
	panic("stats: SampleDiscrete unreachable")
}

// Normalize scales w in place so its elements sum to one. It panics when the
// sum is not positive.
func Normalize(w []float64) {
	var total float64
	for _, v := range w {
		total += v
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		panic(fmt.Sprintf("stats: Normalize with invalid total %g", total))
	}
	for i := range w {
		w[i] /= total
	}
}

// Shuffle returns a random permutation of 0..n-1 using rng.
func Shuffle(rng *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// SplitSeed derives a deterministic child seed from a base seed and a stream
// index using SplitMix64, so goroutine-parallel trajectories draw from
// decorrelated deterministic streams regardless of schedule.
func SplitSeed(base int64, stream int) int64 {
	z := uint64(base) + uint64(stream+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("stats: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// CumSum returns the cumulative sums of x.
func CumSum(x []float64) []float64 {
	out := make([]float64, len(x))
	var acc float64
	for i, v := range x {
		acc += v
		out[i] = acc
	}
	return out
}

// Percentile bands for aggregating many trajectories into median/IQR curves.

// Band holds pointwise lower/median/upper curves across a family of series.
type Band struct {
	Lo, Mid, Hi []float64
}

// AggregateBand computes pointwise quantile curves (loQ, 0.5, hiQ) across a
// set of equally long series. Series shorter than the longest are treated as
// holding their final value (right-censored), which matches how trajectories
// with early termination are plotted in the paper.
func AggregateBand(series [][]float64, loQ, hiQ float64) Band {
	if len(series) == 0 {
		panic("stats: AggregateBand of no series")
	}
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if maxLen == 0 {
		panic("stats: AggregateBand of empty series")
	}
	b := Band{
		Lo:  make([]float64, maxLen),
		Mid: make([]float64, maxLen),
		Hi:  make([]float64, maxLen),
	}
	col := make([]float64, 0, len(series))
	for t := 0; t < maxLen; t++ {
		col = col[:0]
		for _, s := range series {
			if len(s) == 0 {
				continue
			}
			if t < len(s) {
				col = append(col, s[t])
			} else {
				col = append(col, s[len(s)-1])
			}
		}
		sort.Float64s(col)
		b.Lo[t] = quantileSorted(col, loQ)
		b.Mid[t] = quantileSorted(col, 0.5)
		b.Hi[t] = quantileSorted(col, hiQ)
	}
	return b
}

// Pearson returns the Pearson correlation coefficient of x and y. It panics
// when lengths differ or are < 2, and returns 0 when either variable is
// constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	if len(x) < 2 {
		panic("stats: Pearson needs at least two samples")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of x and y: Pearson on the
// ranks, with ties receiving their average rank.
func Spearman(x, y []float64) float64 {
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based average ranks of x (ties share the mean of the
// ranks they span).
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
