package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Fatalf("Mean = %g want 5", got)
	}
	if got := Variance(x); !approx(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %g want %g", got, 32.0/7.0)
	}
	if got := StdDev(x); !approx(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %g", got)
	}
}

func TestMinMax(t *testing.T) {
	x := []float64{3, -1, 4, 1, 5}
	if Min(x) != -1 || Max(x) != 5 {
		t.Fatalf("Min/Max = %g/%g", Min(x), Max(x))
	}
}

func TestEmptyPanics(t *testing.T) {
	funcs := map[string]func(){
		"mean":      func() { Mean(nil) },
		"min":       func() { Min(nil) },
		"max":       func() { Max(nil) },
		"quantile":  func() { Quantile(nil, 0.5) },
		"summarize": func() { Summarize(nil) },
		"variance1": func() { Variance([]float64{1}) },
		"rmse":      func() { RMSE(nil, nil) },
		"hist":      func() { Histogram(nil, 4) },
		"qrange":    func() { Quantile([]float64{1}, 1.5) },
	}
	for name, fn := range funcs {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestQuantileInterpolation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(x, c.q); !approx(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%g) = %g want %g", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("single-sample quantile = %g want 7", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	x := []float64{3, 1, 2}
	Quantile(x, 0.5)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", x)
	}
}

func TestMedianIQR(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if Median(x) != 3 {
		t.Fatalf("Median = %g", Median(x))
	}
	if got := IQR(x); !approx(got, 2, 1e-12) {
		t.Fatalf("IQR = %g want 2", got)
	}
}

func TestRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{1, 2, 3}
	if got := RMSE(pred, act); got != 0 {
		t.Fatalf("RMSE = %g want 0", got)
	}
	pred2 := []float64{2, 4}
	act2 := []float64{0, 0}
	want := math.Sqrt((4.0 + 16.0) / 2.0)
	if got := RMSE(pred2, act2); !approx(got, want, 1e-12) {
		t.Fatalf("RMSE = %g want %g", got, want)
	}
}

func TestWeightedRMSEReducesToRMSE(t *testing.T) {
	pred := []float64{1, 3, 5}
	act := []float64{0, 0, 0}
	w := []float64{1, 1, 1}
	if got, want := WeightedRMSE(pred, act, w), RMSE(pred, act); !approx(got, want, 1e-12) {
		t.Fatalf("WeightedRMSE = %g want %g", got, want)
	}
}

func TestWeightedRMSEPrioritizes(t *testing.T) {
	pred := []float64{10, 0}
	act := []float64{0, 0}
	// All the weight on the accurate sample drives the metric to zero.
	if got := WeightedRMSE(pred, act, []float64{0, 1}); got != 0 {
		t.Fatalf("WeightedRMSE = %g want 0", got)
	}
	if got := WeightedRMSE(pred, act, []float64{1, 0}); !approx(got, 10, 1e-12) {
		t.Fatalf("WeightedRMSE = %g want 10", got)
	}
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{1, -1}, []float64{0, 0}); got != 1 {
		t.Fatalf("MAE = %g want 1", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 8, 12.77, 32, 4})
	if s.N != 5 || s.Min != 4 || s.Max != 32 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Median != 8 {
		t.Fatalf("Median = %g want 8", s.Median)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if len(counts) != 2 || len(edges) != 3 {
		t.Fatalf("sizes %d,%d", len(counts), len(edges))
	}
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	// Constant input does not divide by zero.
	counts, _ = Histogram([]float64{5, 5, 5}, 3)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("constant histogram total = %d", total)
	}
}

func TestViolin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	v := Violin(x, 32)
	if len(v.Grid) != 32 || len(v.Density) != 32 {
		t.Fatalf("violin sizes %d,%d", len(v.Grid), len(v.Density))
	}
	// Density must be non-negative and peak near the center for a normal
	// sample.
	var peakIdx int
	for i, d := range v.Density {
		if d < 0 {
			t.Fatalf("negative density at %d", i)
		}
		if d > v.Density[peakIdx] {
			peakIdx = i
		}
	}
	peakX := v.Grid[peakIdx]
	if math.Abs(peakX) > 1 {
		t.Fatalf("KDE peak at %g, expected near 0", peakX)
	}
}

func TestViolinConstantSample(t *testing.T) {
	v := Violin([]float64{2, 2, 2}, 8)
	if v.Min != 2 || v.Max != 2 {
		t.Fatalf("violin summary %+v", v.Summary)
	}
	for _, d := range v.Density {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatal("non-finite density for constant sample")
		}
	}
}

func TestSampleDiscreteDeterministicEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Only index 2 has weight.
	for i := 0; i < 50; i++ {
		if got := SampleDiscrete(rng, []float64{0, 0, 1, 0}); got != 2 {
			t.Fatalf("SampleDiscrete = %d want 2", got)
		}
	}
}

func TestSampleDiscreteDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := []float64{1, 3}
	counts := [2]int{}
	n := 20000
	for i := 0; i < n; i++ {
		counts[SampleDiscrete(rng, w)]++
	}
	frac := float64(counts[1]) / float64(n)
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("index-1 fraction = %g want ~0.75", frac)
	}
}

func TestSampleDiscreteInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, w := range map[string][]float64{
		"zero":     {0, 0},
		"negative": {1, -1},
		"nan":      {math.NaN()},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			SampleDiscrete(rng, w)
		})
	}
}

func TestNormalize(t *testing.T) {
	w := []float64{1, 3}
	Normalize(w)
	if !approx(w[0], 0.25, 1e-12) || !approx(w[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", w)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Shuffle(rng, 100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p[:10])
		}
		seen[v] = true
	}
}

func TestSplitSeedDecorrelated(t *testing.T) {
	a := SplitSeed(42, 0)
	b := SplitSeed(42, 1)
	c := SplitSeed(43, 0)
	if a == b || a == c || b == c {
		t.Fatalf("seeds collide: %d %d %d", a, b, c)
	}
	if a != SplitSeed(42, 0) {
		t.Fatal("SplitSeed not deterministic")
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !approx(v[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v", v)
		}
	}
}

func TestCumSum(t *testing.T) {
	v := CumSum([]float64{1, 2, 3})
	if v[0] != 1 || v[1] != 3 || v[2] != 6 {
		t.Fatalf("CumSum = %v", v)
	}
}

func TestAggregateBand(t *testing.T) {
	series := [][]float64{
		{1, 2, 3},
		{3, 4, 5},
		{2, 3, 4},
	}
	b := AggregateBand(series, 0.25, 0.75)
	if len(b.Mid) != 3 {
		t.Fatalf("band length %d", len(b.Mid))
	}
	if b.Mid[0] != 2 || b.Mid[2] != 4 {
		t.Fatalf("band mid = %v", b.Mid)
	}
}

func TestAggregateBandRightCensored(t *testing.T) {
	// Shorter series hold their final value — matches early-terminated
	// trajectories.
	series := [][]float64{
		{10},
		{0, 0, 0},
	}
	b := AggregateBand(series, 0, 1)
	if b.Hi[2] != 10 {
		t.Fatalf("censored extension Hi = %v", b.Hi)
	}
	if b.Lo[2] != 0 {
		t.Fatalf("censored extension Lo = %v", b.Lo)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			qq := math.Min(q, 1)
			v := Quantile(x, qq)
			if v < prev-1e-12 || v < Min(x)-1e-12 || v > Max(x)+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize agrees with direct sort-based statistics.
func TestSummarizeConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		s := Summarize(x)
		sorted := append([]float64(nil), x...)
		sort.Float64s(sorted)
		return s.Min == sorted[0] && s.Max == sorted[n-1] &&
			approx(s.Median, Median(x), 1e-12) &&
			s.Q1 <= s.Median && s.Median <= s.Q3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: CumSum is monotone for non-negative inputs, and its last element
// equals the total.
func TestCumSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		x := make([]float64, n)
		var total float64
		for i := range x {
			x[i] = rng.Float64()
			total += x[i]
		}
		cs := CumSum(x)
		for i := 1; i < n; i++ {
			if cs[i] < cs[i-1] {
				return false
			}
		}
		return approx(cs[n-1], total, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, []float64{2, 4, 6, 8}); !approx(got, 1, 1e-12) {
		t.Fatalf("perfect correlation = %g", got)
	}
	if got := Pearson(x, []float64{8, 6, 4, 2}); !approx(got, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %g", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant series correlation = %g", got)
	}
}

func TestPearsonPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatch": func() { Pearson([]float64{1}, []float64{1, 2}) },
		"short":    func() { Pearson([]float64{1}, []float64{1}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform gives rank correlation 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	if got := Spearman(x, y); !approx(got, 1, 1e-12) {
		t.Fatalf("Spearman = %g want 1", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v want %v", r, want)
		}
	}
}

// Property: Spearman is invariant under strictly increasing transforms.
func TestSpearmanInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		a := Spearman(x, y)
		// exp is strictly increasing.
		ex := make([]float64, n)
		for i := range x {
			ex[i] = math.Exp(x[i])
		}
		b := Spearman(ex, y)
		return approx(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
