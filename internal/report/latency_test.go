package report

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeLatencies(t *testing.T) {
	secs := make([]float64, 100)
	for i := range secs {
		secs[i] = float64(i+1) / 1000 // 1ms..100ms
	}
	s := SummarizeLatencies("submit", secs, 2)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.P50-0.0505) > 1e-9 {
		t.Fatalf("p50 = %g", s.P50)
	}
	if s.Max != 0.1 {
		t.Fatalf("max = %g", s.Max)
	}
	if s.PerSecond != 50 {
		t.Fatalf("per-second = %g", s.PerSecond)
	}
	if s.P99 <= s.P90 || s.P90 <= s.P50 {
		t.Fatalf("percentiles not ordered: %g %g %g", s.P50, s.P90, s.P99)
	}
}

func TestSummarizeLatenciesEmpty(t *testing.T) {
	s := SummarizeLatencies("status", nil, 1)
	if s.Count != 0 || s.P99 != 0 || s.PerSecond != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestLatencyTable(t *testing.T) {
	sums := []LatencySummary{
		SummarizeLatencies("submit", []float64{0.001, 0.002}, 1),
		SummarizeLatencies("status", []float64{0.005}, 1),
	}
	out := LatencyTable(sums).String()
	for _, want := range []string{"route", "submit", "status", "p99 (ms)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
