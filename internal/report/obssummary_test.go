package report

import (
	"math"
	"strings"
	"testing"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/faults"
	"alamr/internal/obs"
	"alamr/internal/online"
)

// TestHealthTableCensoredFatalGolden pins the full rendering of a mixed
// censored+fatal ledger — every row, the canonical class order, and the
// column alignment.
func TestHealthTableCensoredFatalGolden(t *testing.T) {
	h := online.Health{
		Attempts:      9,
		Successes:     4,
		Retries:       2,
		Censored:      2,
		Fatal:         1,
		FaultsByClass: map[string]int{"oom": 1, "timeout": 1, "transient": 2, "unknown": 1},
		LostNHByClass: map[string]float64{"oom": 0.75, "timeout": 0.5, "transient": 0.125},
		LostNH:        1.375,
		BackoffSec:    3.25,
	}
	golden := `metric           count     node-hours lost
------------------------------------------
attempts         9
successes        4
retries          2
censored         2
fatal            1
fault:oom        1         0.75
fault:timeout    1         0.5
fault:transient  2         0.125
fault:unknown    1         0
total lost                 1.375
backoff (sec)              3.25
ledger           balanced
`
	if got := HealthTable(h).String(); got != golden {
		t.Fatalf("HealthTable golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

func TestObsSummaryNilRegistry(t *testing.T) {
	if tab := ObsSummary(nil); tab != nil {
		t.Fatalf("ObsSummary(nil) = %v, want nil", tab)
	}
}

// TestObsSummaryStreamPoolGating: the streamed-pool series render as a
// unit keyed on the scored counter. A campaign that never streamed must
// not show a pruning section even if stale stream gauges linger in the
// registry (a restored checkpoint can carry one); a campaign that streamed
// must show the full scored/pruned partition, a zero pruned count
// included, so the reconcile invariant is readable.
func TestObsSummaryStreamPoolGating(t *testing.T) {
	streamSeries := []string{
		obs.MetricPoolShardsScored,
		obs.MetricPoolShardsPruned,
		obs.MetricPoolShardsInflight,
		obs.MetricPoolStreamLive,
		obs.MetricPoolShardScoreSecs,
		obs.Labeled(obs.MetricPoolWorkerShards, obs.LabelWorker, "0"),
	}

	// Never streamed: zero scored shards, but a stale live gauge, an idle
	// in-flight gauge, and a leftover per-worker counter are all present.
	reg := obs.NewRegistry()
	reg.Counter(obs.MetricLoopIterations, "iters").Add(4)
	reg.Gauge(obs.MetricPoolStreamLive, "live").Set(512)
	reg.Gauge(obs.MetricPoolShardsInflight, "inflight").Set(0)
	reg.Counter(streamSeries[5], "per-worker").Add(3)
	reg.Histogram(obs.MetricPoolShardScoreSecs, "latency", obs.LatencyBuckets).Observe(0.01)
	out := ObsSummary(reg).String()
	for _, name := range streamSeries {
		if strings.Contains(out, name) {
			t.Errorf("summary shows stream series %s for a campaign that never streamed:\n%s", name, out)
		}
	}
	if !strings.Contains(out, obs.MetricLoopIterations) {
		t.Fatalf("summary dropped a non-stream series:\n%s", out)
	}

	// Streamed with nothing pruned: the pruned row must appear showing 0 —
	// its absence would be unreadable next to a non-zero scored count.
	reg = obs.NewRegistry()
	reg.Counter(obs.MetricPoolShardsScored, "scored").Add(64)
	reg.Counter(obs.MetricPoolShardsPruned, "pruned").Add(0)
	reg.Gauge(obs.MetricPoolStreamLive, "live").Set(512)
	tab := ObsSummary(reg)
	out = tab.String()
	for _, want := range []string{obs.MetricPoolShardsScored, obs.MetricPoolShardsPruned, obs.MetricPoolStreamLive} {
		if !strings.Contains(out, want) {
			t.Errorf("streamed summary missing %s:\n%s", want, out)
		}
	}
	prunedRow := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, obs.MetricPoolShardsPruned) && strings.HasSuffix(strings.TrimSpace(line), " 0") {
			prunedRow = true
		}
	}
	if !prunedRow {
		t.Errorf("pruned row does not show an explicit 0:\n%s", out)
	}
}

// analyticLab is a deterministic formula-backed lab, cheap enough to drive
// a full faulty campaign inside a unit test.
type analyticLab struct{ combos []dataset.Combo }

func (l *analyticLab) Candidates() []dataset.Combo { return l.combos }

func (l *analyticLab) Run(c dataset.Combo) (dataset.Job, error) {
	wall := 2.0 * math.Pow(float64(c.Mx)/8, 1.5) * math.Pow(2, float64(c.MaxLevel-3)) *
		(1 + c.R0) / (0.3 + c.RhoIn)
	return dataset.Job{
		P: c.P, Mx: c.Mx, MaxLevel: c.MaxLevel, R0: c.R0, RhoIn: c.RhoIn,
		WallSec: wall,
		CostNH:  wall * float64(c.P) / 3600,
		MemMB:   0.05 * float64(c.Mx*c.Mx) / 64 * math.Pow(2, float64(c.MaxLevel-3)) / math.Sqrt(float64(c.P)),
	}, nil
}

// TestObsSummaryReconcilesWithHealth runs a fault-injected campaign with
// observability enabled and checks the obs fault counters agree exactly
// with the campaign's own Health ledger — the two accounting systems are
// built independently (handles in faults.RunWithRetry vs. Health.absorb in
// the online runtime) and must never drift.
func TestObsSummaryReconcilesWithHealth(t *testing.T) {
	defer obs.Disable()
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)

	lab := faults.MustFaultyLab(&analyticLab{combos: dataset.AllCombos()}, faults.LabConfig{
		Seed:       31,
		RSSLimitMB: 0.35,
		PTransient: 0.15,
		PCorrupt:   0.1,
	})
	res, err := online.Run(lab, online.Config{
		Policy:         core.RGMA{},
		MaxExperiments: 14,
		MemLimitMB:     0.35,
		Seed:           31,
		Retry:          faults.RetryPolicy{MaxAttempts: 6},
	})
	if res == nil {
		t.Fatalf("campaign returned no result (err=%v)", err)
	}
	h := res.Health
	if !h.Consistent() {
		t.Fatalf("health ledger does not balance: %+v", h)
	}
	if h.Attempts <= h.Successes {
		t.Fatalf("fault cocktail injected nothing, reconciliation vacuous: %+v", h)
	}

	counter := func(name string) int64 {
		v, ok := reg.CounterValue(name)
		if !ok {
			t.Fatalf("counter %s not registered", name)
		}
		return v
	}
	checks := []struct {
		name string
		want int
	}{
		{obs.MetricFaultAttempts, h.Attempts},
		{obs.MetricFaultSuccesses, h.Successes},
		{obs.MetricFaultRetries, h.Retries},
		{obs.MetricFaultCensored, h.Censored},
		{obs.MetricFaultFatal, h.Fatal},
		{obs.MetricLoopIterations, len(res.CumCost)},
	}
	for _, c := range checks {
		if got := counter(c.name); got != int64(c.want) {
			t.Errorf("%s = %d, Health says %d", c.name, got, c.want)
		}
	}
	for cl, n := range h.FaultsByClass {
		if got := counter(obs.Labeled(obs.MetricFaultByClass, "class", cl)); got != int64(n) {
			t.Errorf("class %s = %d, Health says %d", cl, got, n)
		}
	}

	// The live gauges must equal the final post-hoc columns.
	if len(res.CumCost) > 0 {
		if cc, _ := reg.GaugeValue(obs.MetricCampaignCumCost); cc != res.CumCost[len(res.CumCost)-1] {
			t.Errorf("cum-cost gauge %g != final CC %g", cc, res.CumCost[len(res.CumCost)-1])
		}
		if cr, _ := reg.GaugeValue(obs.MetricCampaignCumRegret); cr != res.CumRegret[len(res.CumRegret)-1] {
			t.Errorf("cum-regret gauge %g != final CR %g", cr, res.CumRegret[len(res.CumRegret)-1])
		}
	}

	// And the rendered summary carries the reconciled counters.
	out := ObsSummary(reg).String()
	for _, want := range []string{
		obs.MetricFaultAttempts,
		obs.MetricCampaignCumCost,
		obs.MetricCheckpointWriteSeconds,
	} {
		// Histograms with no observations are omitted; checkpointing is off
		// in this campaign, so its timing series must NOT appear.
		if want == obs.MetricCheckpointWriteSeconds {
			if strings.Contains(out, want) {
				t.Errorf("summary shows idle histogram %s:\n%s", want, out)
			}
			continue
		}
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %s:\n%s", want, out)
		}
	}
}
