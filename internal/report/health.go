package report

import (
	"fmt"

	"alamr/internal/faults"
	"alamr/internal/online"
)

// HealthTable renders a campaign's fault-tolerance ledger: the attempt
// accounting, the per-class fault counts, and the node-hours lost to each
// class. Classes are emitted in the canonical faults.Classes() order so the
// table is stable across runs.
func HealthTable(h online.Health) *Table {
	t := &Table{Header: []string{"metric", "count", "node-hours lost"}}
	t.Add("attempts", h.Attempts, "")
	t.Add("successes", h.Successes, "")
	t.Add("retries", h.Retries, "")
	t.Add("censored", h.Censored, "")
	t.Add("fatal", h.Fatal, "")
	for _, cl := range faults.Classes() {
		n := h.FaultsByClass[string(cl)]
		nh := h.LostNHByClass[string(cl)]
		if n == 0 && nh == 0 {
			continue
		}
		t.Add("fault:"+string(cl), n, nh)
	}
	t.Add("total lost", "", h.LostNH)
	if h.BackoffSec > 0 {
		t.Add("backoff (sec)", "", h.BackoffSec)
	}
	balance := "balanced"
	if !h.Consistent() {
		balance = fmt.Sprintf("UNBALANCED (%d != %d+%d+%d+%d)",
			h.Attempts, h.Successes, h.Retries, h.Censored, h.Fatal)
	}
	t.Add("ledger", balance, "")
	return t
}
