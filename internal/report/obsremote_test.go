package report

import (
	"strings"
	"testing"
	"time"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/faults"
	"alamr/internal/obs"
	"alamr/internal/online"
	"alamr/internal/remotelab"
)

// startRemoteWorker runs an in-process fleet member against the dispatcher
// through the public API only; cleanup closes the dispatcher (idempotent)
// and waits the worker goroutine out.
func startRemoteWorker(t *testing.T, d *remotelab.Dispatcher, name string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		remotelab.RunWorker(d.Addr(), remotelab.WorkerConfig{
			Name:      name,
			Executor:  remotelab.SynthLab{},
			Heartbeat: 100 * time.Millisecond,
		})
	}()
	t.Cleanup(func() {
		d.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("remote worker goroutine leaked past dispatcher close")
		}
	})
}

// TestObsSummaryRemoteFleetReconciles runs a campaign against a two-worker
// remote fleet with the dispatcher's RSS limit low enough to OOM-kill the
// big-footprint init configuration, then checks the per-worker obs series
// agree with the campaign's own Health ledger — and that ObsSummary
// surfaces both the fleet totals and the per-worker labeled series.
func TestObsSummaryRemoteFleetReconciles(t *testing.T) {
	defer obs.Disable()
	reg := obs.NewRegistry()
	obs.Enable(reg, nil)

	d, err := remotelab.NewDispatcher(remotelab.Config{
		Seed:       23,
		RSSLimitMB: 0.15,
		Candidates: dataset.AllCombos()[:96],
		Heartbeat:  2 * time.Second,
		Wait:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	startRemoteWorker(t, d, "r0")
	startRemoteWorker(t, d, "r1")
	deadline := time.Now().Add(5 * time.Second)
	for len(d.Workers()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 2 workers joined", len(d.Workers()))
		}
		time.Sleep(5 * time.Millisecond)
	}

	res, err := online.Run(d, online.Config{
		Policy: core.RGMA{},
		// The second init configuration's analytic footprint (~0.2 MB)
		// exceeds the fleet's 0.15 MB RSS limit, so the warm-up yields one
		// clean observation and one censored kill.
		InitDesign: []dataset.Combo{
			{P: 4, Mx: 8, MaxLevel: 3, R0: 0.3, RhoIn: 0.1},
			{P: 4, Mx: 8, MaxLevel: 6, R0: 0.3, RhoIn: 0.1},
		},
		MaxExperiments: 6,
		MemLimitMB:     0.5,
		Seed:           23,
		Retry:          faults.RetryPolicy{MaxAttempts: 6},
	})
	if err != nil {
		t.Fatalf("remote campaign failed: %v", err)
	}

	h := res.Health
	if !h.Consistent() {
		t.Fatalf("health ledger does not balance: %+v", h)
	}
	if h.Censored < 1 {
		t.Fatalf("RSS limit censored nothing: %+v", h)
	}

	// Fleet totals against the ledger: every attempt was dispatched, every
	// dispatch was answered (no losses on a healthy fleet), and censored
	// kills are completed dispatches — the worker reported them.
	dispatched, _ := reg.CounterValue(obs.MetricRemoteJobsDispatched)
	completed, _ := reg.CounterValue(obs.MetricRemoteJobsCompleted)
	lost, _ := reg.CounterValue(obs.MetricRemoteJobsLost)
	if int64(h.Attempts) != dispatched {
		t.Fatalf("ledger attempts=%d != obs dispatched=%d", h.Attempts, dispatched)
	}
	if lost != 0 || completed != dispatched {
		t.Fatalf("healthy fleet lost jobs: dispatched=%d completed=%d lost=%d", dispatched, completed, lost)
	}

	// Per-worker series partition the fleet totals.
	r0, _ := reg.CounterValue(obs.Labeled(obs.MetricRemoteJobsDispatched, obs.LabelWorker, "r0"))
	r1, _ := reg.CounterValue(obs.Labeled(obs.MetricRemoteJobsDispatched, obs.LabelWorker, "r1"))
	if r0+r1 != dispatched {
		t.Fatalf("per-worker dispatched %d+%d != fleet total %d", r0, r1, dispatched)
	}
	if live, ok := reg.GaugeValue(obs.MetricRemoteWorkersLive); !ok || live != 2 {
		t.Fatalf("live worker gauge = %v with two workers up", live)
	}

	// And the digest renders all of it: fleet totals, the per-worker
	// labeled series, and the heartbeat histogram.
	tab := ObsSummary(reg)
	if tab == nil {
		t.Fatal("ObsSummary returned nil for a live registry")
	}
	out := tab.String()
	for _, want := range []string{
		obs.MetricRemoteJobsDispatched,
		obs.Labeled(obs.MetricRemoteJobsDispatched, obs.LabelWorker, "r0"),
		obs.Labeled(obs.MetricRemoteJobsCompleted, obs.LabelWorker, "r1"),
		obs.MetricRemoteWorkersLive,
		obs.MetricRemoteHeartbeat,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ObsSummary missing %q:\n%s", want, out)
		}
	}
}
