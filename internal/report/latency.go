package report

import (
	"fmt"
	"sort"

	"alamr/internal/stats"
)

// LatencySummary condenses a set of request latencies (seconds) into the
// fixed percentiles operators gate on. Samples are not retained.
type LatencySummary struct {
	Count          int     `json:"count"`
	P50            float64 `json:"p50_seconds"`
	P90            float64 `json:"p90_seconds"`
	P99            float64 `json:"p99_seconds"`
	Max            float64 `json:"max_seconds"`
	MeanSeconds    float64 `json:"mean_seconds"`
	TotalSeconds   float64 `json:"total_seconds"`
	PerSecond      float64 `json:"per_second"`      // Count / wall duration (0 if unset)
	WallSeconds    float64 `json:"wall_seconds"`    // wall-clock duration of the run
	ErrorCount     int     `json:"errors"`          // non-2xx / transport failures
	RejectedCount  int     `json:"rejected"`        // 429 backpressure responses
	LabelForTables string  `json:"label,omitempty"` // row label, e.g. "submit"
}

// SummarizeLatencies computes a LatencySummary from raw per-request
// latencies in seconds. wallSeconds > 0 additionally fills the throughput
// fields. The input slice is not modified.
func SummarizeLatencies(label string, secs []float64, wallSeconds float64) LatencySummary {
	s := LatencySummary{LabelForTables: label, Count: len(secs), WallSeconds: wallSeconds}
	if len(secs) == 0 {
		return s
	}
	sorted := append([]float64(nil), secs...)
	sort.Float64s(sorted)
	s.P50 = stats.Quantile(sorted, 0.5)
	s.P90 = stats.Quantile(sorted, 0.9)
	s.P99 = stats.Quantile(sorted, 0.99)
	s.Max = sorted[len(sorted)-1]
	for _, v := range sorted {
		s.TotalSeconds += v
	}
	s.MeanSeconds = s.TotalSeconds / float64(len(sorted))
	if wallSeconds > 0 {
		s.PerSecond = float64(len(sorted)) / wallSeconds
	}
	return s
}

// LatencyTable renders one row per summary — the human-readable counterpart
// of the BENCH_serve.json payload the load tester writes.
func LatencyTable(sums []LatencySummary) *Table {
	t := &Table{Header: []string{"route", "n", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)", "req/s", "errors"}}
	ms := func(v float64) string { return fmt.Sprintf("%.2f", 1e3*v) }
	for _, s := range sums {
		t.Add(s.LabelForTables, s.Count, ms(s.P50), ms(s.P90), ms(s.P99), ms(s.Max),
			fmt.Sprintf("%.0f", s.PerSecond), s.ErrorCount)
	}
	return t
}
