package report

import (
	"strings"
	"testing"

	"alamr/internal/online"
)

func TestHealthTable(t *testing.T) {
	h := online.Health{
		Attempts:      12,
		Successes:     8,
		Retries:       2,
		Censored:      1,
		Fatal:         1,
		FaultsByClass: map[string]int{"transient": 2, "oom": 1, "unknown": 1},
		LostNHByClass: map[string]float64{"transient": 0.4, "oom": 1.5},
		LostNH:        1.9,
		BackoffSec:    4.5,
	}
	out := HealthTable(h).String()
	for _, want := range []string{
		"attempts", "12", "fault:oom", "fault:transient", "1.9", "backoff", "balanced",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Canonical class order: oom before transient.
	if strings.Index(out, "fault:oom") > strings.Index(out, "fault:transient") {
		t.Fatalf("classes out of canonical order:\n%s", out)
	}
	// Classes never seen are omitted.
	if strings.Contains(out, "timeout") {
		t.Fatalf("unseen class rendered:\n%s", out)
	}

	h.Attempts = 99
	if !strings.Contains(HealthTable(h).String(), "UNBALANCED") {
		t.Fatal("broken ledger not flagged")
	}
}
