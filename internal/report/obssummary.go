package report

import (
	"fmt"
	"sort"

	"alamr/internal/obs"
)

// ObsSummary renders an end-of-campaign digest of the observability
// registry: every non-zero counter and gauge, plus count/mean for every
// histogram with observations. It is the terminal-first companion to the
// /metrics endpoint — the same registry a Prometheus scrape would see,
// condensed into one table after the run. Returns nil when r is nil (the
// observability-disabled case), so callers can print it unconditionally:
//
//	if t := report.ObsSummary(obs.Default()); t != nil {
//	    t.Write(os.Stdout)
//	}
func ObsSummary(r *obs.Registry) *Table {
	if r == nil {
		return nil
	}
	s := r.TakeSnapshot()
	t := &Table{Header: []string{"metric", "value"}}

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := s.Counters[name]; v != 0 {
			t.Add(name, v)
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := s.Gauges[name]; v != 0 {
			t.Add(name, v)
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		t.Add(name, fmt.Sprintf("n=%d mean=%s", h.Count, formatG(h.Sum/float64(h.Count))))
	}
	return t
}
