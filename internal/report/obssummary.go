package report

import (
	"fmt"
	"sort"
	"strings"

	"alamr/internal/obs"
)

// streamPoolSeries reports whether a series belongs to the streamed-pool
// group (shard scored/pruned/in-flight counters and gauges, the live
// gauge, the shard-latency histogram, and the per-lane labeled counters).
// The group renders as a unit: nothing when streaming never ran, and the
// full scored/pruned partition — a zero pruned count included — when it
// did, so the reconcile invariant (scored + pruned = shards visited) is
// always readable and a campaign that never streamed never shows a
// misleading pruning block.
func streamPoolSeries(name string) bool {
	return strings.HasPrefix(name, "alamr_pool_shards_") ||
		strings.HasPrefix(name, obs.MetricPoolWorkerShards) ||
		name == obs.MetricPoolStreamLive ||
		name == obs.MetricPoolShardScoreSecs
}

// ObsSummary renders an end-of-campaign digest of the observability
// registry: every non-zero counter and gauge, plus count/mean for every
// histogram with observations. It is the terminal-first companion to the
// /metrics endpoint — the same registry a Prometheus scrape would see,
// condensed into one table after the run. Returns nil when r is nil (the
// observability-disabled case), so callers can print it unconditionally:
//
//	if t := report.ObsSummary(obs.Default()); t != nil {
//	    t.Write(os.Stdout)
//	}
func ObsSummary(r *obs.Registry) *Table {
	if r == nil {
		return nil
	}
	s := r.TakeSnapshot()
	t := &Table{Header: []string{"metric", "value"}}
	streamed := s.Counters[obs.MetricPoolShardsScored] > 0

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if streamPoolSeries(name) && !streamed {
			continue
		}
		v := s.Counters[name]
		if v != 0 || (streamed && name == obs.MetricPoolShardsPruned) {
			t.Add(name, v)
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if streamPoolSeries(name) && !streamed {
			continue
		}
		if v := s.Gauges[name]; v != 0 {
			t.Add(name, v)
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if streamPoolSeries(name) && !streamed {
			continue
		}
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		t.Add(name, fmt.Sprintf("n=%d mean=%s", h.Count, formatG(h.Sum/float64(h.Count))))
	}
	return t
}
