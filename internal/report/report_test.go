package report

import (
	"bytes"
	"strings"
	"testing"

	"alamr/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.Add("alpha", 1.5)
	tb.Add("a-much-longer-name", 123456.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(out, "1.235e+05") {
		t.Fatalf("large value formatting: %q", out)
	}
}

func TestTableAddMixedTypes(t *testing.T) {
	tb := &Table{Header: []string{"a", "b", "c"}}
	tb.Add("s", 42, 0.5)
	if tb.Rows[0][1] != "42" || tb.Rows[0][2] != "0.5" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestFormatG(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		12345.6: "1.235e+04",
	}
	_ = cases
	if formatG(0) != "0" {
		t.Fatal("zero")
	}
	if got := formatG(0.0001); !strings.Contains(got, "e-") {
		t.Fatalf("tiny value = %q", got)
	}
}

func TestASCIIViolin(t *testing.T) {
	x := []float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 10}
	v := stats.Violin(x, 16)
	out := ASCIIViolin("cost", v, 30)
	if !strings.Contains(out, "cost") || !strings.Contains(out, "med=") {
		t.Fatalf("violin output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("violin has no density bars")
	}
	// Tiny width is clamped, not broken.
	out2 := ASCIIViolin("x", v, 1)
	if len(out2) == 0 {
		t.Fatal("empty output")
	}
}

func TestASCIIChart(t *testing.T) {
	out := ASCIIChart("rmse", []string{"a", "b"},
		[][]float64{{3, 2, 1}, {4, 3, 2, 1}}, 40, 10)
	if !strings.Contains(out, "rmse") || !strings.Contains(out, "a = a") {
		t.Fatalf("chart output:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatal("series glyphs missing")
	}
}

func TestASCIIChartEmpty(t *testing.T) {
	out := ASCIIChart("none", []string{"a"}, [][]float64{{}}, 10, 5)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart: %q", out)
	}
}

func TestASCIIChartMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ASCIIChart("x", []string{"a"}, nil, 10, 5)
}

func TestWriteCSVSeries(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSVSeries(&buf, []string{"a", "b"}, [][]float64{{1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "iteration,a,b\n0,1,3\n1,2,\n"
	if got != want {
		t.Fatalf("CSV = %q want %q", got, want)
	}
	if err := WriteCSVSeries(&buf, []string{"a"}, nil); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestBandSeries(t *testing.T) {
	b := stats.Band{Lo: []float64{1}, Mid: []float64{2}, Hi: []float64{3}}
	names, series := BandSeries("cr", b)
	if len(names) != 3 || names[1] != "cr-median" {
		t.Fatalf("names = %v", names)
	}
	if series[2][0] != 3 {
		t.Fatalf("series = %v", series)
	}
}
