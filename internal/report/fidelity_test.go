package report

import (
	"strings"
	"testing"

	"alamr/internal/engine"
	"alamr/internal/online"
)

func TestFidelityTable(t *testing.T) {
	ladder := []int{3, 4, 6}
	levels := []int{0, 0, 1, 2, 0, 2}
	costs := []float64{1, 1, 4, 16, 1, 16}
	viol := []bool{false, false, true, false, false, true}
	tbl, err := FidelityTable(ladder, levels, costs, viol)
	if err != nil {
		t.Fatal(err)
	}
	// 3 rungs + total row.
	if len(tbl.Rows) != 4 {
		t.Fatalf("table has %d rows, want 4", len(tbl.Rows))
	}
	// Level 0: 3 selections, 3 nh, no regret.
	if got := tbl.Rows[0]; got[2] != "3" || got[3] != "3" || got[5] != "0" {
		t.Fatalf("level-0 row = %v", got)
	}
	// Level 2: 2 selections, 32 nh, 16 nh regret.
	if got := tbl.Rows[2]; got[2] != "2" || got[3] != "32" || got[5] != "16" {
		t.Fatalf("level-2 row = %v", got)
	}
	// Total: 6 selections, 39 nh, 20 nh regret.
	if got := tbl.Rows[3]; got[2] != "6" || got[3] != "39" || got[5] != "20" {
		t.Fatalf("total row = %v", got)
	}
	out := tbl.String()
	if !strings.Contains(out, "cc (nh)") || !strings.Contains(out, "cr (nh)") {
		t.Fatalf("rendered table lacks CC/CR columns:\n%s", out)
	}
}

func TestFidelityTableErrors(t *testing.T) {
	if _, err := FidelityTable([]int{3, 4}, []int{0}, nil, nil); err == nil {
		t.Fatal("level/cost length mismatch accepted")
	}
	if _, err := FidelityTable([]int{3, 4}, []int{2}, []float64{1}, nil); err == nil {
		t.Fatal("out-of-ladder level accepted")
	}
	if _, err := FidelityTable([]int{3, 4}, []int{0}, []float64{1}, []bool{true, false}); err == nil {
		t.Fatal("violation length mismatch accepted")
	}
}

func TestFidelityTableWrappers(t *testing.T) {
	ladder := []int{3, 6}
	tr := &engine.Trajectory{
		SelectedLevel: []int{0, 1},
		SelectedCost:  []float64{1, 8},
		Violation:     []bool{false, true},
	}
	if _, err := FidelityTrajectoryTable(ladder, tr); err != nil {
		t.Fatal(err)
	}
	res := &online.Result{
		SelectedLevel: []int{1, 0},
		ActualCost:    []float64{8, 1},
		Violation:     []bool{false, false},
	}
	if _, err := FidelityResultTable(ladder, res); err != nil {
		t.Fatal(err)
	}
}
