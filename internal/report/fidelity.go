package report

import (
	"fmt"

	"alamr/internal/engine"
	"alamr/internal/online"
)

// FidelityTable renders the per-rung breakdown of a multi-fidelity campaign:
// how many selections each ladder level received, the node-hours spent there
// (that rung's share of CC), the spend fraction, and the node-hours wasted
// on limit-violating picks at that rung (its share of CR). The final row
// totals the campaign. ladder holds the rungs' MaxLevel values in ladder
// order; levels/costs/violations are the per-selection records (violations
// may be nil when the campaign ran without a memory limit).
func FidelityTable(ladder []int, levels []int, costs []float64, violations []bool) (*Table, error) {
	if len(levels) != len(costs) {
		return nil, fmt.Errorf("report: %d selection levels for %d costs", len(levels), len(costs))
	}
	if violations != nil && len(violations) != len(levels) {
		return nil, fmt.Errorf("report: %d violation flags for %d selections", len(violations), len(levels))
	}
	sel := make([]int, len(ladder))
	cc := make([]float64, len(ladder))
	cr := make([]float64, len(ladder))
	var totalCC, totalCR float64
	totalSel := 0
	for i, l := range levels {
		if l < 0 || l >= len(ladder) {
			return nil, fmt.Errorf("report: selection %d has ladder level %d, ladder holds %d rungs", i, l, len(ladder))
		}
		sel[l]++
		cc[l] += costs[i]
		totalSel++
		totalCC += costs[i]
		if violations != nil && violations[i] {
			cr[l] += costs[i]
			totalCR += costs[i]
		}
	}
	t := &Table{Header: []string{"level", "maxlevel", "selections", "cc (nh)", "cc share", "cr (nh)"}}
	for l, ml := range ladder {
		share := 0.0
		if totalCC > 0 {
			share = cc[l] / totalCC
		}
		t.Add(l, ml, sel[l], cc[l], share, cr[l])
	}
	t.Add("total", "", totalSel, totalCC, 1.0, totalCR)
	return t, nil
}

// FidelityTrajectoryTable is FidelityTable over a replay trajectory.
func FidelityTrajectoryTable(ladder []int, tr *engine.Trajectory) (*Table, error) {
	return FidelityTable(ladder, tr.SelectedLevel, tr.SelectedCost, tr.Violation)
}

// FidelityResultTable is FidelityTable over an online campaign result.
func FidelityResultTable(ladder []int, res *online.Result) (*Table, error) {
	return FidelityTable(ladder, res.SelectedLevel, res.ActualCost, res.Violation)
}
