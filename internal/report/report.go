// Package report renders evaluation results as text tables, ASCII charts,
// and CSV series — the regeneration targets for the paper's tables and
// figures in a terminal-first workflow.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"alamr/internal/stats"
)

// Table renders a simple aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v unless already strings.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatG(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatG(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths)*2 - 2
	for _, w2 := range widths {
		total += w2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}

// ASCIIViolin renders a horizontal text violin: a density profile with
// min/quartile/median markers, the terminal analogue of the paper's Fig 2.
func ASCIIViolin(name string, v stats.ViolinSummary, width int) string {
	if width < 16 {
		width = 16
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (n=%d)\n", name, v.N)
	maxD := 0.0
	for _, d := range v.Density {
		if d > maxD {
			maxD = d
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	for i := len(v.Grid) - 1; i >= 0; i-- {
		bar := int(v.Density[i] / maxD * float64(width))
		marker := ' '
		val := v.Grid[i]
		step := (v.Max - v.Min) / float64(len(v.Grid)-1)
		switch {
		case math.Abs(val-v.Median) <= step/2:
			marker = 'M'
		case math.Abs(val-v.Q1) <= step/2 || math.Abs(val-v.Q3) <= step/2:
			marker = 'Q'
		}
		fmt.Fprintf(&b, "%10.4g %c|%s\n", val, marker, strings.Repeat("#", bar))
	}
	fmt.Fprintf(&b, "  min=%.4g Q1=%.4g med=%.4g mean=%.4g Q3=%.4g max=%.4g\n",
		v.Min, v.Q1, v.Median, v.Mean, v.Q3, v.Max)
	return b.String()
}

// ASCIIChart plots one or more named series as a simple scatter chart with
// shared axes. Series may have different lengths; x is the index.
func ASCIIChart(title string, names []string, series [][]float64, w, h int) string {
	if len(names) != len(series) {
		panic("report: names/series mismatch")
	}
	if w < 10 {
		w = 60
	}
	if h < 4 {
		h = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, v := range s {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return title + " (no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, h)
	for j := range grid {
		grid[j] = []byte(strings.Repeat(" ", w))
	}
	glyphs := "abcdefghijklmnop"
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			x := 0
			if maxLen > 1 {
				x = i * (w - 1) / (maxLen - 1)
			}
			y := int((v - lo) / (hi - lo) * float64(h-1))
			grid[h-1-y][x] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for j, row := range grid {
		label := ""
		if j == 0 {
			label = formatG(hi)
		} else if j == h-1 {
			label = formatG(lo)
		}
		fmt.Fprintf(&b, "%10s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	for i, n := range names {
		fmt.Fprintf(&b, "  %c = %s\n", glyphs[i%len(glyphs)], n)
	}
	return b.String()
}

// WriteCSVSeries emits named series as CSV columns (ragged series leave
// trailing cells empty), for plotting with external tools.
func WriteCSVSeries(w io.Writer, names []string, series [][]float64) error {
	if len(names) != len(series) {
		return fmt.Errorf("report: %d names for %d series", len(names), len(series))
	}
	if _, err := fmt.Fprintf(w, "iteration,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for i := 0; i < maxLen; i++ {
		cells := make([]string, 0, len(series)+1)
		cells = append(cells, fmt.Sprintf("%d", i))
		for _, s := range series {
			if i < len(s) {
				cells = append(cells, fmt.Sprintf("%g", s[i]))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// BandSeries flattens a stats.Band into named series for charts/CSV.
func BandSeries(prefix string, b stats.Band) ([]string, [][]float64) {
	return []string{prefix + "-q25", prefix + "-median", prefix + "-q75"},
		[][]float64{b.Lo, b.Mid, b.Hi}
}
