package amr

import (
	"fmt"
	"math"
	"sort"

	"alamr/internal/euler"
)

// Config describes an AMR run.
type Config struct {
	Mx             int     // cells per patch edge (paper feature "mx")
	MaxLevel       int     // deepest refinement level, 1-based (paper "maxlevel")
	RootsX, RootsY int     // root quadrants along x and y
	X0, Y0, X1, Y1 float64 // physical domain
	CFL            float64 // Courant number (default 0.4)
	RefineTol      float64 // refine quadrants whose indicator exceeds this (default 0.02)
	CoarsenTol     float64 // coarsen quartets whose indicators all fall below this (default RefineTol/4)
	RegridInterval int     // steps between regrids (default 4)
	Limiter        euler.Limiter
	// DisableFluxCorrection turns off the conservative coarse-fine
	// refluxing pass (useful for ablations; the default keeps the scheme
	// conservative on adaptive hierarchies).
	DisableFluxCorrection bool
	// WallsY selects reflecting (solid wall) boundaries at the bottom and
	// top of the domain — the channel configuration of the shock-bubble
	// problem — instead of the default zero-gradient outflow.
	WallsY bool
	// Init gives the initial primitive state at a physical point.
	Init func(x, y float64) euler.Prim
}

func (c *Config) setDefaults() {
	if c.CFL <= 0 {
		c.CFL = 0.4
	}
	if c.RefineTol <= 0 {
		c.RefineTol = 0.02
	}
	if c.CoarsenTol <= 0 {
		c.CoarsenTol = c.RefineTol / 4
	}
	if c.RegridInterval <= 0 {
		c.RegridInterval = 4
	}
}

func (c *Config) validate() error {
	if c.Mx < 4 {
		return fmt.Errorf("amr: Mx = %d, need >= 4", c.Mx)
	}
	if c.MaxLevel < 1 {
		return fmt.Errorf("amr: MaxLevel = %d, need >= 1", c.MaxLevel)
	}
	if c.RootsX < 1 || c.RootsY < 1 {
		return fmt.Errorf("amr: roots %dx%d, need >= 1", c.RootsX, c.RootsY)
	}
	if c.X1 <= c.X0 || c.Y1 <= c.Y0 {
		return fmt.Errorf("amr: empty domain [%g,%g]x[%g,%g]", c.X0, c.X1, c.Y0, c.Y1)
	}
	if c.Init == nil {
		return fmt.Errorf("amr: Init function is required")
	}
	return nil
}

// WorkStats accumulates the performance counters the cluster model converts
// into wall-clock time and memory, mirroring what a real run would report.
type WorkStats struct {
	Steps           int
	CellUpdates     int64 // interior cell updates performed
	GhostCells      int64 // ghost cells filled
	Regrids         int
	RegridCells     int64 // cells touched by interpolation/averaging during regrids
	PeakPatches     int   // maximum concurrent quadrant count
	FinalPatches    int
	PatchesPerLevel []int // snapshot at the end of the run
}

// Mesh is the forest of leaf quadrants plus solver state.
type Mesh struct {
	cfg    Config
	leaves map[Key]*Patch
	time   float64
	stats  WorkStats
}

// NewMesh builds the initial forest: root quadrants initialized from
// cfg.Init, then refined level by level wherever the indicator demands it,
// so the initial condition is resolved before stepping starts.
func NewMesh(cfg Config) (*Mesh, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Mesh{cfg: cfg, leaves: make(map[Key]*Patch)}
	for pj := 0; pj < cfg.RootsY; pj++ {
		for pi := 0; pi < cfg.RootsX; pi++ {
			p := NewPatch(1, pi, pj, cfg.Mx)
			m.initPatch(p)
			m.leaves[Key{1, pi, pj}] = p
		}
	}
	// Resolve the initial condition: repeatedly tag and refine.
	for level := 1; level < cfg.MaxLevel; level++ {
		m.Regrid()
		m.reinitialize()
	}
	m.trackPeak()
	return m, nil
}

// reinitialize re-evaluates cfg.Init on every leaf (used while building the
// initial hierarchy, where interpolated data should be replaced by the exact
// initial condition).
func (m *Mesh) reinitialize() {
	for _, p := range m.leaves {
		m.initPatch(p)
	}
}

func (m *Mesh) initPatch(p *Patch) {
	for j := 0; j < p.mx; j++ {
		for i := 0; i < p.mx; i++ {
			x, y := m.cellCenter(p, i, j)
			p.Set(i, j, m.cfg.Init(x, y).ToCons())
		}
	}
}

// Time returns the current simulation time.
func (m *Mesh) Time() float64 { return m.time }

// Stats returns a copy of the accumulated work counters.
func (m *Mesh) Stats() WorkStats {
	s := m.stats
	s.FinalPatches = len(m.leaves)
	s.PatchesPerLevel = m.PatchesPerLevel()
	return s
}

// NumLeaves returns the current quadrant count.
func (m *Mesh) NumLeaves() int { return len(m.leaves) }

// PatchesPerLevel returns leaf counts indexed by level-1.
func (m *Mesh) PatchesPerLevel() []int {
	out := make([]int, m.cfg.MaxLevel)
	for k := range m.leaves {
		out[k.Level-1]++
	}
	return out
}

// Keys returns the sorted leaf keys (deterministic iteration order).
func (m *Mesh) Keys() []Key {
	ks := make([]Key, 0, len(m.leaves))
	for k := range m.leaves {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(a, b int) bool {
		if ks[a].Level != ks[b].Level {
			return ks[a].Level < ks[b].Level
		}
		if ks[a].PJ != ks[b].PJ {
			return ks[a].PJ < ks[b].PJ
		}
		return ks[a].PI < ks[b].PI
	})
	return ks
}

// Leaf returns the patch for a key, or nil.
func (m *Mesh) Leaf(k Key) *Patch { return m.leaves[k] }

// quadrantsX returns the quadrant-grid width at a level.
func (m *Mesh) quadrantsX(level int) int { return m.cfg.RootsX << (level - 1) }
func (m *Mesh) quadrantsY(level int) int { return m.cfg.RootsY << (level - 1) }

// dx returns the cell size at a level (cells are square by construction when
// the domain aspect matches the root layout; otherwise dx and dy differ).
func (m *Mesh) dx(level int) float64 {
	return (m.cfg.X1 - m.cfg.X0) / float64(m.quadrantsX(level)*m.cfg.Mx)
}

func (m *Mesh) dy(level int) float64 {
	return (m.cfg.Y1 - m.cfg.Y0) / float64(m.quadrantsY(level)*m.cfg.Mx)
}

// cellCenter returns the physical center of cell (i, j) of patch p; ghost
// indices are valid and map outside the patch.
func (m *Mesh) cellCenter(p *Patch, i, j int) (x, y float64) {
	dx, dy := m.dx(p.Level), m.dy(p.Level)
	x0 := m.cfg.X0 + float64(p.PI*p.mx)*dx
	y0 := m.cfg.Y0 + float64(p.PJ*p.mx)*dy
	return x0 + (float64(i)+0.5)*dx, y0 + (float64(j)+0.5)*dy
}

// findLeafAt returns the leaf containing the physical point, searching from
// the finest level down. Returns nil for points outside the domain.
func (m *Mesh) findLeafAt(x, y float64) *Patch {
	if x < m.cfg.X0 || x >= m.cfg.X1 || y < m.cfg.Y0 || y >= m.cfg.Y1 {
		return nil
	}
	for level := m.cfg.MaxLevel; level >= 1; level-- {
		qw := (m.cfg.X1 - m.cfg.X0) / float64(m.quadrantsX(level))
		qh := (m.cfg.Y1 - m.cfg.Y0) / float64(m.quadrantsY(level))
		pi := int((x - m.cfg.X0) / qw)
		pj := int((y - m.cfg.Y0) / qh)
		if p, ok := m.leaves[Key{level, pi, pj}]; ok {
			return p
		}
	}
	return nil
}

// Sample returns the conservative state at a physical point by piecewise-
// constant lookup, and whether the point is inside the domain.
func (m *Mesh) Sample(x, y float64) (euler.Cons, bool) {
	p := m.findLeafAt(x, y)
	if p == nil {
		return euler.Cons{}, false
	}
	dx, dy := m.dx(p.Level), m.dy(p.Level)
	x0 := m.cfg.X0 + float64(p.PI*p.mx)*dx
	y0 := m.cfg.Y0 + float64(p.PJ*p.mx)*dy
	i := int((x - x0) / dx)
	j := int((y - y0) / dy)
	i = clampInt(i, 0, p.mx-1)
	j = clampInt(j, 0, p.mx-1)
	return p.At(i, j), true
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TotalMass integrates density over the domain (a conservation invariant on
// uniform meshes).
func (m *Mesh) TotalMass() float64 {
	var mass float64
	for k, p := range m.leaves {
		cell := m.dx(k.Level) * m.dy(k.Level)
		for j := 0; j < p.mx; j++ {
			for i := 0; i < p.mx; i++ {
				mass += p.At(i, j).Rho * cell
			}
		}
	}
	return mass
}

// TotalEnergy integrates total energy over the domain.
func (m *Mesh) TotalEnergy() float64 {
	var e float64
	for k, p := range m.leaves {
		cell := m.dx(k.Level) * m.dy(k.Level)
		for j := 0; j < p.mx; j++ {
			for i := 0; i < p.mx; i++ {
				e += p.At(i, j).E * cell
			}
		}
	}
	return e
}

// CheckInvariants verifies structural invariants of the forest: leaves form
// an exact partition of the domain and neighboring leaves differ by at most
// one level (2:1 balance). It returns a descriptive error on violation.
func (m *Mesh) CheckInvariants() error {
	// Partition: measure covered area.
	var area float64
	for k := range m.leaves {
		area += m.dx(k.Level) * m.dy(k.Level) * float64(m.cfg.Mx*m.cfg.Mx)
	}
	want := (m.cfg.X1 - m.cfg.X0) * (m.cfg.Y1 - m.cfg.Y0)
	if math.Abs(area-want) > 1e-9*want {
		return fmt.Errorf("amr: leaves cover area %g, domain is %g", area, want)
	}
	// Overlap: no leaf's ancestor may also be a leaf.
	for k := range m.leaves {
		a := k
		for a.Level > 1 {
			a = a.Parent()
			if _, ok := m.leaves[a]; ok {
				return fmt.Errorf("amr: leaf %v overlaps ancestor leaf %v", k, a)
			}
		}
	}
	// 2:1 balance via midpoint-of-edge sampling.
	for k, p := range m.leaves {
		dx, dy := m.dx(k.Level), m.dy(k.Level)
		x0 := m.cfg.X0 + float64(k.PI*p.mx)*dx
		y0 := m.cfg.Y0 + float64(k.PJ*p.mx)*dy
		w := dx * float64(p.mx)
		h := dy * float64(p.mx)
		probes := [][2]float64{
			{x0 - dx/2, y0 + h/2}, // west
			{x0 + w + dx/2, y0 + h/2},
			{x0 + w/2, y0 - dy/2},
			{x0 + w/2, y0 + h + dy/2},
		}
		for _, pr := range probes {
			n := m.findLeafAt(pr[0], pr[1])
			if n == nil {
				continue // domain boundary
			}
			if d := n.Level - k.Level; d > 1 || d < -1 {
				return fmt.Errorf("amr: balance violation between %v and %v", k, Key{n.Level, n.PI, n.PJ})
			}
		}
	}
	return nil
}

func (m *Mesh) trackPeak() {
	if n := len(m.leaves); n > m.stats.PeakPatches {
		m.stats.PeakPatches = n
	}
}
