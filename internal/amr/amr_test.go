package amr

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"alamr/internal/euler"
)

// uniformConfig builds a single-level mesh with a smooth initial condition.
func uniformConfig(mx int) Config {
	return Config{
		Mx:       mx,
		MaxLevel: 1,
		RootsX:   2, RootsY: 1,
		X0: 0, Y0: 0, X1: 2, Y1: 1,
		Init: func(x, y float64) euler.Prim {
			return euler.Prim{Rho: 1 + 0.1*math.Sin(math.Pi*x), U: 0.1, V: 0, P: 1}
		},
	}
}

func smallShockBubble(mx, maxLevel int) Config {
	sb := ShockBubble{R0: 0.2, RhoIn: 0.1}
	cfg := sb.DefaultDomain(mx, maxLevel)
	return cfg
}

func TestNewMeshValidation(t *testing.T) {
	bad := []Config{
		{Mx: 2, MaxLevel: 1, RootsX: 1, RootsY: 1, X1: 1, Y1: 1, Init: func(x, y float64) euler.Prim { return euler.Prim{Rho: 1, P: 1} }},
		{Mx: 8, MaxLevel: 0, RootsX: 1, RootsY: 1, X1: 1, Y1: 1, Init: func(x, y float64) euler.Prim { return euler.Prim{Rho: 1, P: 1} }},
		{Mx: 8, MaxLevel: 1, RootsX: 0, RootsY: 1, X1: 1, Y1: 1, Init: func(x, y float64) euler.Prim { return euler.Prim{Rho: 1, P: 1} }},
		{Mx: 8, MaxLevel: 1, RootsX: 1, RootsY: 1, X1: -1, Y1: 1, Init: func(x, y float64) euler.Prim { return euler.Prim{Rho: 1, P: 1} }},
		{Mx: 8, MaxLevel: 1, RootsX: 1, RootsY: 1, X1: 1, Y1: 1},
	}
	for i, cfg := range bad {
		if _, err := NewMesh(cfg); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestUniformMeshLayout(t *testing.T) {
	m, err := NewMesh(uniformConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLeaves() != 2 {
		t.Fatalf("leaves = %d want 2", m.NumLeaves())
	}
	if got := m.PatchesPerLevel(); got[0] != 2 {
		t.Fatalf("patches per level = %v", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Cells are square: dx == dy.
	if math.Abs(m.dx(1)-m.dy(1)) > 1e-15 {
		t.Fatalf("dx=%g dy=%g", m.dx(1), m.dy(1))
	}
}

func TestPatchIndexingGhosts(t *testing.T) {
	p := NewPatch(1, 0, 0, 8)
	v := euler.Cons{Rho: 3}
	p.Set(-NG, -NG, v)
	if p.At(-NG, -NG) != v {
		t.Fatal("ghost corner round trip failed")
	}
	p.Set(8+NG-1, 8+NG-1, v)
	if p.At(8+NG-1, 8+NG-1) != v {
		t.Fatal("far ghost corner round trip failed")
	}
}

func TestKeyRelations(t *testing.T) {
	k := Key{Level: 3, PI: 5, PJ: 2}
	if k.Parent() != (Key{Level: 2, PI: 2, PJ: 1}) {
		t.Fatalf("Parent = %v", k.Parent())
	}
	for _, c := range k.Children() {
		if c.Parent() != k {
			t.Fatalf("child %v does not point back to %v", c, k)
		}
	}
	if !strings.Contains(k.String(), "L3") {
		t.Fatal("Key.String")
	}
}

func TestSampleInsideOutside(t *testing.T) {
	m, err := NewMesh(uniformConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Sample(1, 0.5); !ok {
		t.Fatal("sample inside domain failed")
	}
	if _, ok := m.Sample(-0.5, 0.5); ok {
		t.Fatal("sample outside domain succeeded")
	}
}

func TestUniformStepConservesMass(t *testing.T) {
	m, err := NewMesh(uniformConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	mass0 := m.TotalMass()
	for s := 0; s < 10; s++ {
		if err := m.Step(m.MaxStableDt()); err != nil {
			t.Fatal(err)
		}
	}
	// Periodic-free domain with outflow: the smooth low-velocity field
	// barely touches the boundary over 10 steps, so mass drift stays tiny.
	if rel := math.Abs(m.TotalMass()-mass0) / mass0; rel > 1e-3 {
		t.Fatalf("mass drift %g", rel)
	}
}

func TestConstantStateIsExactlyPreserved(t *testing.T) {
	cfg := uniformConfig(8)
	cfg.Init = func(x, y float64) euler.Prim { return euler.Prim{Rho: 1.5, U: 0.3, V: -0.2, P: 2} }
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if err := m.Step(m.MaxStableDt()); err != nil {
			t.Fatal(err)
		}
	}
	want := (euler.Prim{Rho: 1.5, U: 0.3, V: -0.2, P: 2}).ToCons()
	for _, k := range m.Keys() {
		p := m.Leaf(k)
		for j := 0; j < p.Mx(); j++ {
			for i := 0; i < p.Mx(); i++ {
				got := p.At(i, j)
				if math.Abs(got.Rho-want.Rho) > 1e-12 || math.Abs(got.E-want.E) > 1e-11 {
					t.Fatalf("constant state drifted at %v (%d,%d): %+v", k, i, j, got)
				}
			}
		}
	}
}

func TestShockBubbleRefinesAroundFeatures(t *testing.T) {
	cfg := smallShockBubble(8, 3)
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ppl := m.PatchesPerLevel()
	if ppl[2] == 0 {
		t.Fatalf("no level-3 refinement at init: %v", ppl)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The deepest refinement should sit near the shock or bubble; the quiet
	// far-right corner may be refined once by the 2:1 balance cascade but
	// never to the maximum level.
	farRight := m.findLeafAt(1.95, 0.95)
	if farRight == nil || farRight.Level >= 3 {
		t.Fatalf("quiet corner refined to max level (%+v)", farRight)
	}
	nearBubbleEdge := m.findLeafAt(0.7, 0.5)
	if nearBubbleEdge == nil || nearBubbleEdge.Level != 3 {
		t.Fatalf("bubble edge not refined to max level (%+v)", nearBubbleEdge)
	}
}

func TestShockBubbleShortRun(t *testing.T) {
	cfg := smallShockBubble(8, 3)
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run(0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps == 0 || stats.CellUpdates == 0 {
		t.Fatalf("no work recorded: %+v", stats)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Time() < 0.02-1e-12 {
		t.Fatalf("time = %g want 0.02", m.Time())
	}
	if stats.PeakPatches < m.NumLeaves() {
		t.Fatalf("peak %d < current %d", stats.PeakPatches, m.NumLeaves())
	}
}

func TestRefineCoarsenRoundTripConservation(t *testing.T) {
	cfg := uniformConfig(8)
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mass0 := m.TotalMass()
	k := Key{1, 0, 0}
	m.refine(k)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Piecewise-constant prolongation conserves integrals exactly.
	if math.Abs(m.TotalMass()-mass0) > 1e-12 {
		t.Fatalf("refine changed mass: %g vs %g", m.TotalMass(), mass0)
	}
	m.coarsen(k)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.TotalMass()-mass0) > 1e-12 {
		t.Fatalf("coarsen changed mass: %g vs %g", m.TotalMass(), mass0)
	}
}

func TestBalanceEnforcement(t *testing.T) {
	cfg := smallShockBubble(8, 4)
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force a deep refinement in one corner and verify the balance pass
	// leaves no >1 level jumps.
	k := Key{1, 0, 0}
	m.refine(k)
	m.refine(Key{2, 0, 0})
	m.refine(Key{3, 0, 0})
	m.enforceBalance()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGhostFillingAcrossLevels(t *testing.T) {
	// Refined mesh with a linear density profile: ghost values obtained via
	// averaging or injection should stay within the global min/max.
	cfg := smallShockBubble(8, 3)
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.fillGhosts()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, k := range m.Keys() {
		p := m.Leaf(k)
		for j := 0; j < p.Mx(); j++ {
			for i := 0; i < p.Mx(); i++ {
				r := p.At(i, j).Rho
				if r < lo {
					lo = r
				}
				if r > hi {
					hi = r
				}
			}
		}
	}
	for _, k := range m.Keys() {
		p := m.Leaf(k)
		for g := 1; g <= NG; g++ {
			for j := 0; j < p.Mx(); j++ {
				for _, c := range []euler.Cons{p.At(-g, j), p.At(p.Mx()+g-1, j), p.At(j, -g), p.At(j, p.Mx()+g-1)} {
					if c.Rho < lo-1e-9 || c.Rho > hi+1e-9 {
						t.Fatalf("ghost density %g outside [%g,%g] at %v", c.Rho, lo, hi, k)
					}
				}
			}
		}
	}
}

func TestShockBubbleValidation(t *testing.T) {
	if err := (ShockBubble{R0: 0, RhoIn: 1}).Validate(); err == nil {
		t.Fatal("zero radius accepted")
	}
	if err := (ShockBubble{R0: 0.1, RhoIn: -1}).Validate(); err == nil {
		t.Fatal("negative density accepted")
	}
	if err := (ShockBubble{R0: 0.1, RhoIn: 0.1, Mach: 0.5}).Validate(); err == nil {
		t.Fatal("subsonic shock accepted")
	}
	if err := (ShockBubble{R0: 0.1, RhoIn: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPostShockStateRankineHugoniot(t *testing.T) {
	// Mach 2 into (ρ=1, p=1): p2 = 4.5, ρ2 = 8/3.
	p := PostShockState(2)
	if math.Abs(p.P-4.5) > 1e-12 {
		t.Fatalf("p2 = %g want 4.5", p.P)
	}
	if math.Abs(p.Rho-8.0/3.0) > 1e-12 {
		t.Fatalf("rho2 = %g want 8/3", p.Rho)
	}
	// Mach 1 shock is no shock at all.
	p1 := PostShockState(1)
	if math.Abs(p1.P-1) > 1e-12 || math.Abs(p1.Rho-1) > 1e-12 || math.Abs(p1.U) > 1e-12 {
		t.Fatalf("Mach-1 state = %+v", p1)
	}
}

func TestRenderers(t *testing.T) {
	cfg := smallShockBubble(8, 2)
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.RenderASCII(40, 20)
	if len(strings.Split(strings.TrimRight(a, "\n"), "\n")) != 20 {
		t.Fatal("ASCII render wrong height")
	}
	l := m.RenderLevels(40, 20)
	if !strings.Contains(l, "2") {
		t.Fatal("level render missing refined region")
	}
	pgm := m.WritePGM(16, 8)
	if !strings.HasPrefix(pgm, "P2\n16 8\n255\n") {
		t.Fatalf("PGM header: %q", pgm[:20])
	}
}

func TestReferenceRunAndEmulate(t *testing.T) {
	ref, err := ReferenceRun(ShockBubble{R0: 0.2, RhoIn: 0.1}, 64, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Snapshots) != 3 {
		t.Fatalf("snapshots = %d", len(ref.Snapshots))
	}
	if ref.Snapshots[2].T < 0.05-1e-9 {
		t.Fatalf("last snapshot at t=%g", ref.Snapshots[2].T)
	}
	for _, s := range ref.Snapshots {
		if s.MaxSpeed <= 0 {
			t.Fatal("non-positive wave speed in snapshot")
		}
	}

	st, err := Emulate(ref, EmulateConfig{Mx: 8, MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.CellUpdates <= 0 || st.Steps <= 0 || st.PeakPatches <= 0 {
		t.Fatalf("empty emulation: %+v", st)
	}
}

func TestEmulateValidation(t *testing.T) {
	ref := &Reference{Snapshots: make([]RefSnapshot, 1)}
	if _, err := Emulate(ref, EmulateConfig{Mx: 8, MaxLevel: 1}); err == nil {
		t.Fatal("expected error for single snapshot")
	}
	if _, err := Emulate(ref, EmulateConfig{Mx: 1, MaxLevel: 1}); err == nil {
		t.Fatal("expected error for tiny Mx")
	}
	if _, err := Emulate(ref, EmulateConfig{Mx: 8, MaxLevel: 0}); err == nil {
		t.Fatal("expected error for MaxLevel 0")
	}
}

func TestReferenceRunValidation(t *testing.T) {
	if _, err := ReferenceRun(ShockBubble{R0: -1, RhoIn: 1}, 64, 0.1, 4); err == nil {
		t.Fatal("bad problem accepted")
	}
	if _, err := ReferenceRun(ShockBubble{R0: 0.2, RhoIn: 0.1}, 63, 0.1, 4); err == nil {
		t.Fatal("odd nx accepted")
	}
	if _, err := ReferenceRun(ShockBubble{R0: 0.2, RhoIn: 0.1}, 64, 0.1, 1); err == nil {
		t.Fatal("single snapshot accepted")
	}
}

func TestEmulateMonotonicInMaxLevel(t *testing.T) {
	ref, err := ReferenceRun(ShockBubble{R0: 0.25, RhoIn: 0.1}, 64, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for lvl := 1; lvl <= 4; lvl++ {
		st, err := Emulate(ref, EmulateConfig{Mx: 8, MaxLevel: lvl})
		if err != nil {
			t.Fatal(err)
		}
		if st.CellUpdates < prev {
			t.Fatalf("work decreased from level %d to %d: %g < %g", lvl-1, lvl, st.CellUpdates, prev)
		}
		prev = st.CellUpdates
	}
}

func TestEmulateMonotonicInMx(t *testing.T) {
	ref, err := ReferenceRun(ShockBubble{R0: 0.25, RhoIn: 0.1}, 64, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, mx := range []int{8, 16, 32} {
		st, err := Emulate(ref, EmulateConfig{Mx: mx, MaxLevel: 3})
		if err != nil {
			t.Fatal(err)
		}
		if st.CellUpdates < prev {
			t.Fatalf("work decreased at mx=%d: %g < %g", mx, st.CellUpdates, prev)
		}
		prev = st.CellUpdates
	}
}

func TestEmulateSubcycleCheaper(t *testing.T) {
	ref, err := ReferenceRun(ShockBubble{R0: 0.25, RhoIn: 0.1}, 64, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	global, err := Emulate(ref, EmulateConfig{Mx: 8, MaxLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Emulate(ref, EmulateConfig{Mx: 8, MaxLevel: 4, Subcycle: true})
	if err != nil {
		t.Fatal(err)
	}
	if sub.CellUpdates > global.CellUpdates {
		t.Fatalf("subcycling more expensive: %g > %g", sub.CellUpdates, global.CellUpdates)
	}
}

func TestUnphysicalStateDetected(t *testing.T) {
	cfg := uniformConfig(8)
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A grossly oversized time step must trip the admissibility check
	// rather than produce NaNs silently.
	err = m.Step(100)
	if err == nil {
		// Smooth fields can survive; force a shock.
		cfg2 := smallShockBubble(8, 1)
		m2, err2 := NewMesh(cfg2)
		if err2 != nil {
			t.Fatal(err2)
		}
		if err3 := m2.Step(100); err3 == nil {
			t.Skip("could not provoke unphysical state with this configuration")
		} else if !errors.Is(err3, ErrUnphysical) {
			t.Fatalf("err = %v want ErrUnphysical", err3)
		}
		return
	}
	if !errors.Is(err, ErrUnphysical) {
		t.Fatalf("err = %v want ErrUnphysical", err)
	}
}

// Property: mesh invariants hold after random refine/coarsen sequences
// followed by balancing.
func TestInvariantsUnderRandomRegridProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallShockBubble(8, 3)
		m, err := NewMesh(cfg)
		if err != nil {
			return false
		}
		for op := 0; op < 8; op++ {
			keys := m.Keys()
			k := keys[rng.Intn(len(keys))]
			if rng.Float64() < 0.7 && k.Level < cfg.MaxLevel {
				m.refine(k)
			} else if k.Level > 1 {
				m.coarsen(k.Parent())
			}
			m.enforceBalance()
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStepUniform32(b *testing.B) {
	m, err := NewMesh(uniformConfig(32))
	if err != nil {
		b.Fatal(err)
	}
	dt := m.MaxStableDt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(dt); err != nil {
			b.Fatal(err)
		}
	}
}

// blobConfig sets up a dense blob at rest centred on x=1 with tagging
// disabled (huge RefineTol), so tests can build a hand-controlled hierarchy
// whose coarse-fine interface bisects the blob.
func blobConfig(mx int, disableCorrection bool) Config {
	return Config{
		Mx:       mx,
		MaxLevel: 2,
		RootsX:   2, RootsY: 1,
		X0: 0, Y0: 0, X1: 2, Y1: 1,
		RefineTol:             1e9, // no tagging: hierarchy is set manually
		RegridInterval:        1 << 30,
		DisableFluxCorrection: disableCorrection,
		Init: func(x, y float64) euler.Prim {
			dx, dy := x-1.0, y-0.5
			if dx*dx+dy*dy < 0.01 {
				return euler.Prim{Rho: 4, P: 4}
			}
			return euler.Prim{Rho: 1, P: 1}
		},
	}
}

// blobMesh refines only the left root so the level-1/level-2 interface runs
// through the blob centre at x=1.
func blobMesh(t *testing.T, disableCorrection bool) *Mesh {
	t.Helper()
	m, err := NewMesh(blobConfig(8, disableCorrection))
	if err != nil {
		t.Fatal(err)
	}
	m.refine(Key{1, 0, 0})
	m.enforceBalance()
	m.reinitialize()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.findLeafAt(0.99, 0.5).Level != 2 || m.findLeafAt(1.01, 0.5).Level != 1 {
		t.Fatal("interface does not bisect the blob")
	}
	return m
}

func TestFluxCorrectionConservesMassOnAdaptiveMesh(t *testing.T) {
	// Three steps keep every numerical precursor at least one cell away
	// from the outflow boundary (information travels one coarse cell per
	// step), so the interior scheme's conservation is exact.
	run := func(disable bool) float64 {
		m := blobMesh(t, disable)
		mass0 := m.TotalMass()
		for s := 0; s < 3; s++ {
			if err := m.Step(m.MaxStableDt()); err != nil {
				t.Fatal(err)
			}
		}
		return math.Abs(m.TotalMass()-mass0) / mass0
	}
	corrected := run(false)
	uncorrected := run(true)
	if corrected > 1e-12 {
		t.Fatalf("refluxing left mass drift %g, want machine precision", corrected)
	}
	if uncorrected <= 10*corrected {
		t.Fatalf("expected uncorrected drift (%g) to exceed corrected (%g)", uncorrected, corrected)
	}
}

func TestFluxCorrectionConservesEnergy(t *testing.T) {
	m := blobMesh(t, false)
	e0 := m.TotalEnergy()
	for s := 0; s < 3; s++ {
		if err := m.Step(m.MaxStableDt()); err != nil {
			t.Fatal(err)
		}
	}
	if rel := math.Abs(m.TotalEnergy()-e0) / e0; rel > 1e-12 {
		t.Fatalf("energy drift %g", rel)
	}
}

func TestReflectingWallsConserveMass(t *testing.T) {
	// With solid walls at y-boundaries and the blast far from the x ends,
	// no mass can leave even after many steps.
	cfg := blobConfig(8, false)
	cfg.WallsY = true
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.refine(Key{1, 0, 0})
	m.enforceBalance()
	m.reinitialize()
	mass0 := m.TotalMass()
	for s := 0; s < 6; s++ {
		if err := m.Step(m.MaxStableDt()); err != nil {
			t.Fatal(err)
		}
	}
	if rel := math.Abs(m.TotalMass()-mass0) / mass0; rel > 1e-12 {
		t.Fatalf("mass drift %g with reflecting walls", rel)
	}
}

func TestReflectingWallsBounceWave(t *testing.T) {
	// A downward-moving slab reverses its vertical momentum after hitting
	// the wall instead of leaving the domain.
	cfg := Config{
		Mx: 8, MaxLevel: 1, RootsX: 2, RootsY: 1,
		X0: 0, Y0: 0, X1: 2, Y1: 1,
		WallsY: true,
		Init: func(x, y float64) euler.Prim {
			if y < 0.3 {
				return euler.Prim{Rho: 1, V: -0.5, P: 1}
			}
			return euler.Prim{Rho: 1, P: 1}
		},
	}
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mass0 := m.TotalMass()
	for s := 0; s < 40; s++ {
		if err := m.Step(m.MaxStableDt()); err != nil {
			t.Fatal(err)
		}
	}
	// Outflow in x only; the slab is y-uniform flow so x-boundaries carry
	// little, but the wall must have kept the mass from draining downward.
	if rel := math.Abs(m.TotalMass()-mass0) / mass0; rel > 0.02 {
		t.Fatalf("mass drained through the wall: drift %g", rel)
	}
	// Momentum must have (partially) reversed: total My should now be
	// greater than the initial strongly negative value.
	var my float64
	for k, p := range m.leaves {
		cell := m.dx(k.Level) * m.dy(k.Level)
		for j := 0; j < p.Mx(); j++ {
			for i := 0; i < p.Mx(); i++ {
				my += p.At(i, j).My * cell
			}
		}
	}
	if my < -0.3*0.5*2*0.9 {
		t.Fatalf("vertical momentum unchanged: %g", my)
	}
}

func TestBlastWaveMirrorSymmetry(t *testing.T) {
	// A centred blast on a symmetric grid must stay mirror-symmetric in y:
	// the scheme (reconstruction, limiters, HLLC) has no preferred
	// direction.
	cfg := Config{
		Mx: 8, MaxLevel: 1, RootsX: 2, RootsY: 1,
		X0: 0, Y0: 0, X1: 2, Y1: 1,
		Init: func(x, y float64) euler.Prim {
			dx, dy := x-1.0, y-0.5
			if dx*dx+dy*dy < 0.04 {
				return euler.Prim{Rho: 3, P: 3}
			}
			return euler.Prim{Rho: 1, P: 1}
		},
	}
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		if err := m.Step(m.MaxStableDt()); err != nil {
			t.Fatal(err)
		}
	}
	const n = 40
	for i := 0; i < n; i++ {
		x := 2 * (float64(i) + 0.5) / n
		for j := 0; j < n/2; j++ {
			yLo := (float64(j) + 0.5) / n
			yHi := 1 - yLo
			a, okA := m.Sample(x, yLo)
			b, okB := m.Sample(x, yHi)
			if !okA || !okB {
				t.Fatal("sample failed")
			}
			if math.Abs(a.Rho-b.Rho) > 1e-12 {
				t.Fatalf("y-mirror asymmetry at (%g, %g): %g vs %g", x, yLo, a.Rho, b.Rho)
			}
			if math.Abs(a.My+b.My) > 1e-12 {
				t.Fatalf("y-momentum not antisymmetric at (%g, %g)", x, yLo)
			}
		}
	}
}
