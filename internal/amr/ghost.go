package amr

import "alamr/internal/euler"

// fillGhosts populates the ghost layers of every leaf from same-level
// neighbors (copy), coarser neighbors (piecewise-constant prolongation), or
// finer neighbors (2×2 averaging). Ghost cells outside the domain receive
// zero-gradient (outflow) extrapolation from the nearest interior cell.
func (m *Mesh) fillGhosts() {
	for k, p := range m.leaves {
		m.fillPatchGhosts(k, p)
	}
}

func (m *Mesh) fillPatchGhosts(k Key, p *Patch) {
	mx := p.mx
	fill := func(i, j int) {
		x, y := m.cellCenter(p, i, j)
		if m.cfg.WallsY && (y < m.cfg.Y0 || y >= m.cfg.Y1) {
			// Reflecting wall: mirror the interior cell across the boundary
			// and negate the normal (y) momentum.
			my := y
			if y < m.cfg.Y0 {
				my = 2*m.cfg.Y0 - y
			} else {
				my = 2*m.cfg.Y1 - y
			}
			if v, ok := m.ghostValue(p, x, my); ok {
				v.My = -v.My
				p.Set(i, j, v)
				m.stats.GhostCells++
				return
			}
		}
		v, ok := m.ghostValue(p, x, y)
		if !ok {
			// Outside the domain: zero-gradient extrapolation.
			ci := clampInt(i, 0, mx-1)
			cj := clampInt(j, 0, mx-1)
			v = p.At(ci, cj)
		}
		p.Set(i, j, v)
		m.stats.GhostCells++
	}
	// West and east strips (including corners).
	for j := -NG; j < mx+NG; j++ {
		for g := 1; g <= NG; g++ {
			fill(-g, j)
			fill(mx+g-1, j)
		}
	}
	// South and north strips (interior columns only; corners done above).
	for i := 0; i < mx; i++ {
		for g := 1; g <= NG; g++ {
			fill(i, -g)
			fill(i, mx+g-1)
		}
	}
}

// ghostValue returns the state at physical point (x, y) as seen at patch p's
// resolution: direct copy from an equal-level leaf, the covering coarse cell
// from a coarser leaf, or the conservative average of the fine cells from a
// finer leaf.
func (m *Mesh) ghostValue(p *Patch, x, y float64) (euler.Cons, bool) {
	n := m.findLeafAt(x, y)
	if n == nil {
		return euler.Cons{}, false
	}
	switch {
	case n.Level >= p.Level:
		if n.Level == p.Level {
			return m.cellAtPoint(n, x, y), true
		}
		// Finer neighbor (balance guarantees exactly one level): average the
		// 2×2 fine cells inside our ghost cell.
		dx, dy := m.dx(p.Level), m.dy(p.Level)
		var sum euler.Cons
		count := 0
		for sj := 0; sj < 2; sj++ {
			for si := 0; si < 2; si++ {
				fx := x + (float64(si)-0.5)*dx/2
				fy := y + (float64(sj)-0.5)*dy/2
				f := m.findLeafAt(fx, fy)
				if f == nil {
					continue
				}
				v := m.cellAtPoint(f, fx, fy)
				sum.Rho += v.Rho
				sum.Mx += v.Mx
				sum.My += v.My
				sum.E += v.E
				count++
			}
		}
		if count == 0 {
			return euler.Cons{}, false
		}
		inv := 1 / float64(count)
		return euler.Cons{Rho: sum.Rho * inv, Mx: sum.Mx * inv, My: sum.My * inv, E: sum.E * inv}, true
	default:
		// Coarser neighbor: piecewise-constant prolongation.
		return m.cellAtPoint(n, x, y), true
	}
}

// cellAtPoint returns the interior cell of patch n containing the point,
// clamped to the interior.
func (m *Mesh) cellAtPoint(n *Patch, x, y float64) euler.Cons {
	dx, dy := m.dx(n.Level), m.dy(n.Level)
	x0 := m.cfg.X0 + float64(n.PI*n.mx)*dx
	y0 := m.cfg.Y0 + float64(n.PJ*n.mx)*dy
	i := clampInt(int((x-x0)/dx), 0, n.mx-1)
	j := clampInt(int((y-y0)/dy), 0, n.mx-1)
	return n.At(i, j)
}
