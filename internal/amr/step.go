package amr

import (
	"errors"
	"fmt"
	"math"

	"alamr/internal/euler"
)

// ErrUnphysical is returned when the solver produces an inadmissible state
// (negative density or pressure), usually a sign that the CFL number or
// refinement thresholds are too aggressive for the problem.
var ErrUnphysical = errors.New("amr: unphysical state produced")

// MaxStableDt returns the CFL-limited global time step over all leaves.
func (m *Mesh) MaxStableDt() float64 {
	dt := math.Inf(1)
	for k, p := range m.leaves {
		dx, dy := m.dx(k.Level), m.dy(k.Level)
		for j := 0; j < p.mx; j++ {
			for i := 0; i < p.mx; i++ {
				sx, sy := p.At(i, j).ToPrim().MaxWaveSpeed()
				if sx > 0 {
					if d := m.cfg.CFL * dx / sx; d < dt {
						dt = d
					}
				}
				if sy > 0 {
					if d := m.cfg.CFL * dy / sy; d < dt {
						dt = d
					}
				}
			}
		}
	}
	return dt
}

// Step advances the whole hierarchy by one global time step of size dt
// (typically MaxStableDt). All leaves advance together; there is no level
// subcycling (the emulator models subcycled work separately). Unless
// disabled, coarse-fine interface fluxes are conservatively corrected
// (refluxing) before cells update.
func (m *Mesh) Step(dt float64) error {
	m.fillGhosts()
	fluxes := make(map[Key]*patchFluxes, len(m.leaves))
	for k, p := range m.leaves {
		fluxes[k] = m.computeFluxes(p)
	}
	if !m.cfg.DisableFluxCorrection {
		m.correctFluxes(fluxes)
	}
	for k, p := range m.leaves {
		if err := m.applyFluxes(k, p, fluxes[k], dt); err != nil {
			return err
		}
	}
	for _, p := range m.leaves {
		p.swap()
	}
	m.time += dt
	m.stats.Steps++
	if m.cfg.RegridInterval > 0 && m.cfg.MaxLevel > 1 && m.stats.Steps%m.cfg.RegridInterval == 0 {
		m.Regrid()
	}
	return nil
}

// computeFluxes performs slope-limited MUSCL reconstruction and evaluates
// HLLC fluxes on every face of one patch.
func (m *Mesh) computeFluxes(p *Patch) *patchFluxes {
	mx := p.mx
	lim := m.cfg.Limiter

	// Reconstruct limited slopes per cell for the stencil region
	// [-1, mx+1) so faces at the interior boundary see proper states.
	type slopes struct{ sx, sy [euler.NumFields]float64 }
	w := mx + 2
	sl := make([]slopes, w*w)
	sidx := func(i, j int) int { return (j+1)*w + (i + 1) }
	get := func(i, j int) [euler.NumFields]float64 {
		c := p.At(i, j)
		return [euler.NumFields]float64{c.Rho, c.Mx, c.My, c.E}
	}
	for j := -1; j <= mx; j++ {
		for i := -1; i <= mx; i++ {
			c := get(i, j)
			l := get(i-1, j)
			r := get(i+1, j)
			d := get(i, j-1)
			u := get(i, j+1)
			var s slopes
			for f := 0; f < euler.NumFields; f++ {
				s.sx[f] = lim.Apply(c[f]-l[f], r[f]-c[f])
				s.sy[f] = lim.Apply(c[f]-d[f], u[f]-c[f])
			}
			sl[sidx(i, j)] = s
		}
	}

	recon := func(i, j int, dxFrac, dyFrac float64) euler.Cons {
		c := get(i, j)
		s := sl[sidx(i, j)]
		return euler.Cons{
			Rho: c[0] + dxFrac*s.sx[0] + dyFrac*s.sy[0],
			Mx:  c[1] + dxFrac*s.sx[1] + dyFrac*s.sy[1],
			My:  c[2] + dxFrac*s.sx[2] + dyFrac*s.sy[2],
			E:   c[3] + dxFrac*s.sx[3] + dyFrac*s.sy[3],
		}
	}

	pf := &patchFluxes{
		fx: make([]euler.Cons, (mx+1)*mx),
		fy: make([]euler.Cons, mx*(mx+1)),
	}
	for j := 0; j < mx; j++ {
		for i := 0; i <= mx; i++ {
			l := recon(i-1, j, 0.5, 0)
			r := recon(i, j, -0.5, 0)
			if !l.Valid() {
				l = p.At(i-1, j)
			}
			if !r.Valid() {
				r = p.At(i, j)
			}
			pf.fx[j*(mx+1)+i] = euler.HLLCFluxX(l, r)
		}
	}
	for j := 0; j <= mx; j++ {
		for i := 0; i < mx; i++ {
			l := recon(i, j-1, 0, 0.5)
			r := recon(i, j, 0, -0.5)
			if !l.Valid() {
				l = p.At(i, j-1)
			}
			if !r.Valid() {
				r = p.At(i, j)
			}
			pf.fy[j*mx+i] = euler.HLLCFluxY(l, r)
		}
	}
	return pf
}

// applyFluxes performs the finite-volume update of one patch's interior into
// its uNew buffer using the (possibly corrected) face fluxes.
func (m *Mesh) applyFluxes(k Key, p *Patch, pf *patchFluxes, dt float64) error {
	mx := p.mx
	dx, dy := m.dx(k.Level), m.dy(k.Level)
	ax, ay := dt/dx, dt/dy
	for j := 0; j < mx; j++ {
		for i := 0; i < mx; i++ {
			c := p.At(i, j)
			fw := pf.fx[j*(mx+1)+i]
			fe := pf.fx[j*(mx+1)+i+1]
			fs := pf.fy[j*mx+i]
			fn := pf.fy[(j+1)*mx+i]
			nc := euler.Cons{
				Rho: c.Rho - ax*(fe.Rho-fw.Rho) - ay*(fn.Rho-fs.Rho),
				Mx:  c.Mx - ax*(fe.Mx-fw.Mx) - ay*(fn.Mx-fs.Mx),
				My:  c.My - ax*(fe.My-fw.My) - ay*(fn.My-fs.My),
				E:   c.E - ax*(fe.E-fw.E) - ay*(fn.E-fs.E),
			}
			if !nc.Valid() {
				return fmt.Errorf("%w at level %d patch (%d,%d) cell (%d,%d): %+v",
					ErrUnphysical, k.Level, k.PI, k.PJ, i, j, nc)
			}
			p.uNew[p.idx(i, j)] = nc
		}
	}
	m.stats.CellUpdates += int64(mx * mx)
	return nil
}

// Run advances the simulation to tEnd, returning the accumulated work
// statistics. Progress can be observed via the optional callback, invoked
// after every step.
func (m *Mesh) Run(tEnd float64, onStep func(step int, t, dt float64)) (WorkStats, error) {
	for m.time < tEnd {
		dt := m.MaxStableDt()
		if math.IsInf(dt, 0) || dt <= 0 {
			return m.Stats(), fmt.Errorf("amr: invalid time step %g at t=%g", dt, m.time)
		}
		if m.time+dt > tEnd {
			dt = tEnd - m.time
		}
		if err := m.Step(dt); err != nil {
			return m.Stats(), err
		}
		if onStep != nil {
			onStep(m.stats.Steps, m.time, dt)
		}
	}
	return m.Stats(), nil
}
