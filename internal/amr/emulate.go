package amr

import (
	"fmt"
	"math"
)

// Reference is a resolved reference solution of the shock-bubble problem:
// snapshots of the relative density-gradient field |∇ρ|/ρ (per unit length)
// plus the maximum wave speed at a sequence of times. The physics depends
// only on the problem's physical parameters (r0, rhoin), so one Reference
// drives the performance emulation for every (p, mx, maxlevel) combination —
// this is what makes regenerating the paper's 600-job campaign tractable on
// a workstation.
type Reference struct {
	Nx, Ny         int
	X0, Y0, X1, Y1 float64
	TEnd           float64
	Snapshots      []RefSnapshot
}

// RefSnapshot is the gradient field and wave speed at one instant.
type RefSnapshot struct {
	T        float64
	Grad     []float64 // Nx*Ny, row-major, |∇ρ|/ρ per unit length
	MaxSpeed float64
	// pool[l] is the max of Grad over each quadrant of level l+1, sized
	// qx(l+1)*qy(l+1); built lazily per overlay geometry.
	pool map[poolKey][]float64
}

type poolKey struct {
	level, rootsX, rootsY int
}

// ReferenceRun solves the shock-bubble problem on a uniform nx×(nx/2) grid
// (2×1 root layout) to tEnd, capturing nsnap evenly spaced snapshots
// (including t=0 and t=tEnd).
func ReferenceRun(prob ShockBubble, nx int, tEnd float64, nsnap int) (*Reference, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if nx%2 != 0 || nx < 16 {
		return nil, fmt.Errorf("amr: reference nx = %d must be even and >= 16", nx)
	}
	if nsnap < 2 {
		return nil, fmt.Errorf("amr: need at least 2 snapshots, got %d", nsnap)
	}
	cfg := prob.DefaultDomain(nx/2, 1)
	cfg.RegridInterval = 1 << 30 // uniform: never regrid
	mesh, err := NewMesh(cfg)
	if err != nil {
		return nil, err
	}
	ref := &Reference{
		Nx: nx, Ny: nx / 2,
		X0: cfg.X0, Y0: cfg.Y0, X1: cfg.X1, Y1: cfg.Y1,
		TEnd: tEnd,
	}
	snapAt := func() {
		ref.Snapshots = append(ref.Snapshots, takeSnapshot(mesh, nx, nx/2))
	}
	snapAt()
	for s := 1; s < nsnap; s++ {
		target := tEnd * float64(s) / float64(nsnap-1)
		for mesh.Time() < target {
			dt := mesh.MaxStableDt()
			if mesh.Time()+dt > target {
				dt = target - mesh.Time()
			}
			if err := mesh.Step(dt); err != nil {
				return nil, err
			}
		}
		snapAt()
	}
	return ref, nil
}

func takeSnapshot(m *Mesh, nx, ny int) RefSnapshot {
	rho := m.SampleDensity(nx, ny)
	dx := (m.cfg.X1 - m.cfg.X0) / float64(nx)
	dy := (m.cfg.Y1 - m.cfg.Y0) / float64(ny)
	grad := make([]float64, nx*ny)
	at := func(i, j int) float64 {
		i = clampInt(i, 0, nx-1)
		j = clampInt(j, 0, ny-1)
		return rho[j*nx+i]
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			c := at(i, j)
			if c <= 0 {
				continue
			}
			gx := (at(i+1, j) - at(i-1, j)) / (2 * dx)
			gy := (at(i, j+1) - at(i, j-1)) / (2 * dy)
			grad[j*nx+i] = math.Hypot(gx, gy) / c
		}
	}
	var smax float64
	for j := 0; j < ny; j++ {
		y := m.cfg.Y0 + (m.cfg.Y1-m.cfg.Y0)*(float64(j)+0.5)/float64(ny)
		for i := 0; i < nx; i++ {
			x := m.cfg.X0 + (m.cfg.X1-m.cfg.X0)*(float64(i)+0.5)/float64(nx)
			if c, ok := m.Sample(x, y); ok {
				sx, sy := c.ToPrim().MaxWaveSpeed()
				if sx > smax {
					smax = sx
				}
				if sy > smax {
					smax = sy
				}
			}
		}
	}
	return RefSnapshot{T: m.Time(), Grad: grad, MaxSpeed: smax, pool: make(map[poolKey][]float64)}
}

// quadMax returns the maximum of the snapshot's gradient field over quadrant
// (pi, pj) of the given level in a rootsX×rootsY forest, using a cached
// max-pool table.
func (s *RefSnapshot) quadMax(nx, ny, level, rootsX, rootsY, pi, pj int) float64 {
	k := poolKey{level, rootsX, rootsY}
	tbl, ok := s.pool[k]
	if !ok {
		qx := rootsX << (level - 1)
		qy := rootsY << (level - 1)
		tbl = make([]float64, qx*qy)
		// Each quadrant takes the max over the reference cells overlapping
		// it. The index ranges are computed per quadrant so the table is
		// correct both when quadrants are coarser than reference cells and
		// when they are finer (then the containing cell's value is used).
		for qj := 0; qj < qy; qj++ {
			j0 := qj * ny / qy
			j1 := ((qj+1)*ny + qy - 1) / qy
			if j1 > ny {
				j1 = ny
			}
			if j1 <= j0 {
				j1 = j0 + 1
			}
			for qi := 0; qi < qx; qi++ {
				i0 := qi * nx / qx
				i1 := ((qi+1)*nx + qx - 1) / qx
				if i1 > nx {
					i1 = nx
				}
				if i1 <= i0 {
					i1 = i0 + 1
				}
				var mx float64
				for j := j0; j < j1; j++ {
					for i := i0; i < i1; i++ {
						if g := s.Grad[j*nx+i]; g > mx {
							mx = g
						}
					}
				}
				tbl[qj*qx+qi] = mx
			}
		}
		s.pool[k] = tbl
	}
	qx := rootsX << (level - 1)
	return tbl[pj*qx+pi]
}

// EmulateConfig selects the grid/machine-independent solver parameters for a
// performance emulation of one job.
type EmulateConfig struct {
	Mx             int
	MaxLevel       int
	RootsX, RootsY int     // default 2×1
	CFL            float64 // default 0.4
	RefineTol      float64 // default 0.02
	RegridInterval int     // default 4
	Subcycle       bool    // level-subcycled time stepping (ForestClaw style)
}

func (c *EmulateConfig) setDefaults() {
	if c.RootsX == 0 {
		c.RootsX = 2
	}
	if c.RootsY == 0 {
		c.RootsY = 1
	}
	if c.CFL <= 0 {
		c.CFL = 0.4
	}
	if c.RefineTol <= 0 {
		c.RefineTol = 0.02
	}
	if c.RegridInterval <= 0 {
		c.RegridInterval = 4
	}
}

// EmulationStats reports the work and footprint a configuration would incur
// over the reference run, in machine-independent units. The cluster package
// converts these into wall-clock seconds and bytes.
type EmulationStats struct {
	CellUpdates         float64 // total interior cell updates
	Steps               float64 // time steps (finest level when subcycling)
	GhostCells          float64 // ghost cells filled
	Regrids             float64 // regrid events
	RegridCells         float64 // cells touched while regridding
	PeakPatches         int     // maximum concurrent quadrants
	MeanPatches         float64 // time-averaged quadrant count
	PatchesPerLevelPeak []int
}

// Emulate computes the work a given configuration performs on the reference
// problem: at each snapshot the adaptive hierarchy the gradient-tagging
// criterion would build is reconstructed (at quadrant granularity, exactly
// as Regrid would), and the cell updates between snapshots are integrated
// using CFL-limited step counts.
func Emulate(ref *Reference, cfg EmulateConfig) (EmulationStats, error) {
	cfg.setDefaults()
	if cfg.Mx < 4 {
		return EmulationStats{}, fmt.Errorf("amr: emulate Mx = %d, need >= 4", cfg.Mx)
	}
	if cfg.MaxLevel < 1 {
		return EmulationStats{}, fmt.Errorf("amr: emulate MaxLevel = %d, need >= 1", cfg.MaxLevel)
	}
	if len(ref.Snapshots) < 2 {
		return EmulationStats{}, fmt.Errorf("amr: reference has %d snapshots, need >= 2", len(ref.Snapshots))
	}

	var st EmulationStats
	st.PatchesPerLevelPeak = make([]int, cfg.MaxLevel)
	width := ref.X1 - ref.X0

	var meanAccum, timeAccum float64
	prevLeaves := overlayLeaves(ref, &ref.Snapshots[0], cfg)
	for s := 1; s < len(ref.Snapshots); s++ {
		snap := &ref.Snapshots[s]
		leaves := overlayLeaves(ref, snap, cfg)
		// Work over the interval [t_{s-1}, t_s] uses the mesh built at the
		// interval's start and the wave speed prevailing over the interval.
		interval := snap.T - ref.Snapshots[s-1].T
		speed := math.Max(snap.MaxSpeed, ref.Snapshots[s-1].MaxSpeed)
		if speed <= 0 || interval <= 0 {
			prevLeaves = leaves
			continue
		}

		active := prevLeaves
		total := 0
		finest := 1
		for l, n := range active {
			total += n
			if n > 0 {
				finest = l + 1
			}
		}
		if total > st.PeakPatches {
			st.PeakPatches = total
		}
		for l, n := range active {
			if n > st.PatchesPerLevelPeak[l] {
				st.PatchesPerLevelPeak[l] = n
			}
		}
		meanAccum += float64(total) * interval
		timeAccum += interval

		cellsPerPatch := float64(cfg.Mx * cfg.Mx)
		ghostPerPatch := float64(4 * (cfg.Mx + 2*NG) * NG)
		dxAt := func(level int) float64 {
			return width / float64((cfg.RootsX<<(level-1))*cfg.Mx)
		}
		if cfg.Subcycle {
			// Each level advances with its own CFL step.
			for l, n := range active {
				if n == 0 {
					continue
				}
				level := l + 1
				steps := interval * speed / (cfg.CFL * dxAt(level))
				st.CellUpdates += float64(n) * cellsPerPatch * steps
				st.GhostCells += float64(n) * ghostPerPatch * steps
				if level == finest {
					st.Steps += steps
				}
			}
		} else {
			// Global time step from the finest occupied level.
			steps := interval * speed / (cfg.CFL * dxAt(finest))
			st.Steps += steps
			st.CellUpdates += float64(total) * cellsPerPatch * steps
			st.GhostCells += float64(total) * ghostPerPatch * steps
		}
		// Regridding every RegridInterval finest-level steps; each event
		// retags every patch and rebuilds the changed fraction.
		stepsFinest := interval * speed / (cfg.CFL * dxAt(finest))
		regrids := stepsFinest / float64(cfg.RegridInterval)
		st.Regrids += regrids
		st.RegridCells += regrids * float64(total) * cellsPerPatch

		prevLeaves = leaves
	}
	if timeAccum > 0 {
		st.MeanPatches = meanAccum / timeAccum
	}
	return st, nil
}

// overlayLeaves reconstructs the leaf counts per level (index level-1) that
// gradient tagging would produce for the snapshot: a quadrant refines when
// the maximum relative gradient within it, scaled by the quadrant's cell
// size, exceeds RefineTol — the same criterion Mesh.Regrid applies.
func overlayLeaves(ref *Reference, snap *RefSnapshot, cfg EmulateConfig) []int {
	counts := make([]int, cfg.MaxLevel)
	width := ref.X1 - ref.X0
	var descend func(level, pi, pj int)
	descend = func(level, pi, pj int) {
		dx := width / float64((cfg.RootsX<<(level-1))*cfg.Mx)
		g := snap.quadMax(ref.Nx, ref.Ny, level, cfg.RootsX, cfg.RootsY, pi, pj)
		if level < cfg.MaxLevel && g*dx > cfg.RefineTol {
			for _, c := range (Key{Level: level, PI: pi, PJ: pj}).Children() {
				descend(c.Level, c.PI, c.PJ)
			}
			return
		}
		counts[level-1]++
	}
	for pj := 0; pj < cfg.RootsY; pj++ {
		for pi := 0; pi < cfg.RootsX; pi++ {
			descend(1, pi, pj)
		}
	}
	return counts
}
