package amr

import (
	"math"

	"alamr/internal/euler"
)

// indicator returns the refinement indicator for a leaf: the maximum over
// interior cells of the relative density gradient per cell,
// |∇ρ|·dx/ρ. Large values mean the local solution is under-resolved at this
// patch's cell size, the standard gradient-tagging criterion.
func (m *Mesh) indicator(p *Patch) float64 {
	var worst float64
	for j := 0; j < p.mx; j++ {
		for i := 0; i < p.mx; i++ {
			c := p.At(i, j).Rho
			if c <= 0 {
				continue
			}
			gx := math.Abs(p.At(i+1, j).Rho-p.At(i-1, j).Rho) / 2
			gy := math.Abs(p.At(i, j+1).Rho-p.At(i, j-1).Rho) / 2
			g := math.Hypot(gx, gy) / c
			if g > worst {
				worst = g
			}
		}
	}
	return worst
}

// Regrid retags every leaf and applies refinement, coarsening, and 2:1
// balancing. Ghost layers are filled first because the indicator stencil
// reaches one cell outside the interior.
func (m *Mesh) Regrid() {
	m.fillGhosts()
	m.stats.Regrids++

	ind := make(map[Key]float64, len(m.leaves))
	for k, p := range m.leaves {
		ind[k] = m.indicator(p)
	}

	// Refinement pass.
	for _, k := range m.Keys() {
		if k.Level >= m.cfg.MaxLevel {
			continue
		}
		if ind[k] > m.cfg.RefineTol {
			m.refine(k)
		}
	}

	// Coarsening pass: a sibling quartet of leaves whose indicators all sit
	// below the coarsen threshold merges into its parent. The indicator is
	// evaluated at the children's resolution, which is conservative.
	for _, k := range m.Keys() {
		if k.Level <= 1 {
			continue
		}
		if _, ok := m.leaves[k]; !ok {
			continue // already merged this sweep
		}
		parent := k.Parent()
		children := parent.Children()
		all := true
		for _, c := range children {
			p, ok := m.leaves[c]
			if !ok {
				all = false
				break
			}
			ci, ok := ind[c]
			if !ok {
				ci = m.indicator(p)
			}
			if ci >= m.cfg.CoarsenTol {
				all = false
				break
			}
		}
		if all {
			m.coarsen(parent)
		}
	}

	m.enforceBalance()
	m.trackPeak()
}

// refine replaces leaf k with its four children, prolonging data by
// piecewise-constant injection (each parent cell fills a 2×2 child block).
func (m *Mesh) refine(k Key) {
	p, ok := m.leaves[k]
	if !ok {
		return
	}
	delete(m.leaves, k)
	for _, ck := range k.Children() {
		c := NewPatch(ck.Level, ck.PI, ck.PJ, m.cfg.Mx)
		// Child quadrant (ck.PI, ck.PJ) covers parent's half starting at
		// (ox, oy) in parent cell coordinates.
		ox := (ck.PI % 2) * m.cfg.Mx / 2
		oy := (ck.PJ % 2) * m.cfg.Mx / 2
		for j := 0; j < m.cfg.Mx; j++ {
			for i := 0; i < m.cfg.Mx; i++ {
				c.Set(i, j, p.At(ox+i/2, oy+j/2))
			}
		}
		m.leaves[ck] = c
		m.stats.RegridCells += int64(m.cfg.Mx * m.cfg.Mx)
	}
}

// coarsen replaces the four children of parent with a single parent leaf,
// restricting data by conservative 2×2 averaging.
func (m *Mesh) coarsen(parent Key) {
	children := parent.Children()
	ps := [4]*Patch{}
	for i, ck := range children {
		p, ok := m.leaves[ck]
		if !ok {
			return
		}
		ps[i] = p
	}
	np := NewPatch(parent.Level, parent.PI, parent.PJ, m.cfg.Mx)
	half := m.cfg.Mx / 2
	for ci, child := range ps {
		ox := (children[ci].PI % 2) * half
		oy := (children[ci].PJ % 2) * half
		for j := 0; j < half; j++ {
			for i := 0; i < half; i++ {
				var s euler.Cons
				for sj := 0; sj < 2; sj++ {
					for si := 0; si < 2; si++ {
						v := child.At(2*i+si, 2*j+sj)
						s.Rho += v.Rho
						s.Mx += v.Mx
						s.My += v.My
						s.E += v.E
					}
				}
				np.Set(ox+i, oy+j, euler.Cons{Rho: s.Rho / 4, Mx: s.Mx / 4, My: s.My / 4, E: s.E / 4})
			}
		}
	}
	for _, ck := range children {
		delete(m.leaves, ck)
	}
	m.leaves[parent] = np
	m.stats.RegridCells += int64(m.cfg.Mx * m.cfg.Mx)
}

// enforceBalance refines coarse leaves until every pair of edge-adjacent
// leaves differs by at most one level.
func (m *Mesh) enforceBalance() {
	for changed := true; changed; {
		changed = false
		for _, k := range m.Keys() {
			if _, ok := m.leaves[k]; !ok {
				continue
			}
			for _, nk := range m.tooCoarseNeighbors(k) {
				m.refine(nk)
				changed = true
			}
		}
	}
}

// tooCoarseNeighbors returns neighbor leaves more than one level coarser
// than k.
func (m *Mesh) tooCoarseNeighbors(k Key) []Key {
	var out []Key
	seen := make(map[Key]bool)
	p := m.leaves[k]
	if p == nil {
		return nil
	}
	dx, dy := m.dx(k.Level), m.dy(k.Level)
	x0 := m.cfg.X0 + float64(k.PI*p.mx)*dx
	y0 := m.cfg.Y0 + float64(k.PJ*p.mx)*dy
	w := dx * float64(p.mx)
	h := dy * float64(p.mx)
	// Sample several points along each edge so every adjacent quadrant is
	// seen even when the neighborhood is mixed-level.
	for _, frac := range []float64{0.25, 0.75} {
		probes := [][2]float64{
			{x0 - dx/2, y0 + h*frac},
			{x0 + w + dx/2, y0 + h*frac},
			{x0 + w*frac, y0 - dy/2},
			{x0 + w*frac, y0 + h + dy/2},
		}
		for _, pr := range probes {
			n := m.findLeafAt(pr[0], pr[1])
			if n == nil {
				continue
			}
			if k.Level-n.Level > 1 {
				nk := Key{n.Level, n.PI, n.PJ}
				if !seen[nk] {
					seen[nk] = true
					out = append(out, nk)
				}
			}
		}
	}
	return out
}
