package amr

import (
	"fmt"
	"math"

	"alamr/internal/euler"
)

// ShockBubble describes the 2D shock-bubble interaction problem from the
// paper (Fig 1): a planar right-moving shock in ambient air hits a circular
// bubble of radius R0 and density RhoIn. Physical behaviour — and therefore
// refinement, work, and memory — depends on the two physical features the
// paper sweeps: R0 ("r0, bubble size") and RhoIn ("rhoin, bubble density").
type ShockBubble struct {
	Mach   float64 // incident shock Mach number (default 2)
	ShockX float64 // initial shock position (default 0.2)
	CX, CY float64 // bubble center (default 0.5, 0.5)
	R0     float64 // bubble radius
	RhoIn  float64 // bubble density (ambient is 1)
}

// Validate checks the physical parameters.
func (s ShockBubble) Validate() error {
	if s.R0 <= 0 {
		return fmt.Errorf("amr: bubble radius %g must be positive", s.R0)
	}
	if s.RhoIn <= 0 {
		return fmt.Errorf("amr: bubble density %g must be positive", s.RhoIn)
	}
	if s.Mach != 0 && s.Mach <= 1 {
		return fmt.Errorf("amr: shock Mach number %g must exceed 1", s.Mach)
	}
	return nil
}

func (s ShockBubble) withDefaults() ShockBubble {
	if s.Mach == 0 {
		s.Mach = 2
	}
	if s.ShockX == 0 {
		s.ShockX = 0.2
	}
	if s.CX == 0 {
		s.CX = 0.5
	}
	if s.CY == 0 {
		s.CY = 0.5
	}
	return s
}

// PostShockState returns the Rankine–Hugoniot post-shock primitive state for
// a Mach-M shock running into ambient (ρ=1, p=1, u=0) air.
func PostShockState(mach float64) euler.Prim {
	g := euler.Gamma
	m2 := mach * mach
	p2 := 1 + 2*g/(g+1)*(m2-1)
	rho2 := (g + 1) * m2 / ((g-1)*m2 + 2)
	c1 := math.Sqrt(g) // ambient sound speed with ρ=p=1
	u2 := mach * c1 * (1 - 1/rho2)
	return euler.Prim{Rho: rho2, U: u2, V: 0, P: p2}
}

// Init returns the initial-condition function for the problem.
func (s ShockBubble) Init() func(x, y float64) euler.Prim {
	s = s.withDefaults()
	post := PostShockState(s.Mach)
	return func(x, y float64) euler.Prim {
		if x < s.ShockX {
			return post
		}
		dx, dy := x-s.CX, y-s.CY
		if dx*dx+dy*dy < s.R0*s.R0 {
			return euler.Prim{Rho: s.RhoIn, U: 0, V: 0, P: 1}
		}
		return euler.Prim{Rho: 1, U: 0, V: 0, P: 1}
	}
}

// DefaultDomain returns the standard configuration for the shock-bubble
// problem: domain [0,2]×[0,1] with a 2×1 root layout so cells stay square.
func (s ShockBubble) DefaultDomain(mx, maxLevel int) Config {
	s = s.withDefaults()
	return Config{
		Mx:       mx,
		MaxLevel: maxLevel,
		RootsX:   2, RootsY: 1,
		X0: 0, Y0: 0, X1: 2, Y1: 1,
		Init: s.Init(),
	}
}
