package amr

import (
	"fmt"
	"strings"
)

// RenderASCII samples the density field on a w×h grid and renders it as
// ASCII art, dark characters marking high density. Useful for the Fig 1
// reproduction in terminals and logs.
func (m *Mesh) RenderASCII(w, h int) string {
	const ramp = " .:-=+*#%@"
	field := m.SampleDensity(w, h)
	lo, hi := field[0], field[0]
	for _, v := range field {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	for j := h - 1; j >= 0; j-- {
		for i := 0; i < w; i++ {
			t := (field[j*w+i] - lo) / (hi - lo)
			idx := int(t * float64(len(ramp)-1))
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SampleDensity samples the density field at the centers of a w×h raster
// covering the domain, row-major with row 0 at the bottom.
func (m *Mesh) SampleDensity(w, h int) []float64 {
	out := make([]float64, w*h)
	for j := 0; j < h; j++ {
		y := m.cfg.Y0 + (m.cfg.Y1-m.cfg.Y0)*(float64(j)+0.5)/float64(h)
		for i := 0; i < w; i++ {
			x := m.cfg.X0 + (m.cfg.X1-m.cfg.X0)*(float64(i)+0.5)/float64(w)
			if c, ok := m.Sample(x, y); ok {
				out[j*w+i] = c.Rho
			}
		}
	}
	return out
}

// RenderLevels renders the refinement-level map as digits, visualizing the
// adaptive hierarchy.
func (m *Mesh) RenderLevels(w, h int) string {
	var b strings.Builder
	for j := h - 1; j >= 0; j-- {
		y := m.cfg.Y0 + (m.cfg.Y1-m.cfg.Y0)*(float64(j)+0.5)/float64(h)
		for i := 0; i < w; i++ {
			x := m.cfg.X0 + (m.cfg.X1-m.cfg.X0)*(float64(i)+0.5)/float64(w)
			p := m.findLeafAt(x, y)
			if p == nil {
				b.WriteByte('?')
				continue
			}
			fmt.Fprintf(&b, "%d", p.Level)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WritePGM encodes the density field as a binary-free plain PGM image
// (portable graymap), suitable for viewing with standard tools.
func (m *Mesh) WritePGM(w, h int) string {
	field := m.SampleDensity(w, h)
	lo, hi := field[0], field[0]
	for _, v := range field {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", w, h)
	for j := h - 1; j >= 0; j-- {
		for i := 0; i < w; i++ {
			g := int(255 * (field[j*w+i] - lo) / (hi - lo))
			fmt.Fprintf(&b, "%d ", g)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
