package amr

import "alamr/internal/euler"

// patchFluxes stores one patch's face fluxes for a step: fx has (mx+1)×mx
// vertical-face entries, fy has mx×(mx+1) horizontal-face entries.
type patchFluxes struct {
	fx, fy []euler.Cons
}

// faceID names a cell face in global level coordinates. For a vertical face,
// (gi, gj) is the face between cells (gi-1, gj) and (gi, gj); for a
// horizontal face, between (gi, gj-1) and (gi, gj).
type faceID struct {
	level    int
	vertical bool
	gi, gj   int
}

// children returns the two level+1 faces that tile this face.
func (f faceID) children() [2]faceID {
	if f.vertical {
		return [2]faceID{
			{f.level + 1, true, 2 * f.gi, 2 * f.gj},
			{f.level + 1, true, 2 * f.gi, 2*f.gj + 1},
		}
	}
	return [2]faceID{
		{f.level + 1, false, 2 * f.gi, 2 * f.gj},
		{f.level + 1, false, 2*f.gi + 1, 2 * f.gj},
	}
}

// correctFluxes enforces conservation at coarse-fine interfaces: wherever a
// leaf's boundary face is tiled by two finer faces (the neighbor is one
// level deeper, guaranteed by 2:1 balance), the coarse flux is replaced by
// the average of the fine fluxes, so the flux leaving the fine region
// exactly enters the coarse cell. This is the standard refluxing step of
// block-structured AMR (Berger–Colella).
func (m *Mesh) correctFluxes(fluxes map[Key]*patchFluxes) {
	// Index every boundary face of every leaf at its own level.
	fine := make(map[faceID]euler.Cons)
	for k, p := range m.leaves {
		pf := fluxes[k]
		mx := p.mx
		gx, gy := k.PI*mx, k.PJ*mx
		for j := 0; j < mx; j++ {
			fine[faceID{k.Level, true, gx, gy + j}] = pf.fx[j*(mx+1)]
			fine[faceID{k.Level, true, gx + mx, gy + j}] = pf.fx[j*(mx+1)+mx]
		}
		for i := 0; i < mx; i++ {
			fine[faceID{k.Level, false, gx + i, gy}] = pf.fy[i]
			fine[faceID{k.Level, false, gx + i, gy + mx}] = pf.fy[mx*mx+i]
		}
	}

	avg := func(a, b euler.Cons) euler.Cons {
		return euler.Cons{
			Rho: 0.5 * (a.Rho + b.Rho),
			Mx:  0.5 * (a.Mx + b.Mx),
			My:  0.5 * (a.My + b.My),
			E:   0.5 * (a.E + b.E),
		}
	}

	for k, p := range m.leaves {
		pf := fluxes[k]
		mx := p.mx
		gx, gy := k.PI*mx, k.PJ*mx
		replace := func(f faceID, set func(euler.Cons)) {
			c := f.children()
			a, okA := fine[c[0]]
			b, okB := fine[c[1]]
			if okA && okB {
				set(avg(a, b))
			}
		}
		for j := 0; j < mx; j++ {
			j := j
			replace(faceID{k.Level, true, gx, gy + j}, func(v euler.Cons) { pf.fx[j*(mx+1)] = v })
			replace(faceID{k.Level, true, gx + mx, gy + j}, func(v euler.Cons) { pf.fx[j*(mx+1)+mx] = v })
		}
		for i := 0; i < mx; i++ {
			i := i
			replace(faceID{k.Level, false, gx + i, gy}, func(v euler.Cons) { pf.fy[i] = v })
			replace(faceID{k.Level, false, gx + i, gy + mx}, func(v euler.Cons) { pf.fy[mx*mx+i] = v })
		}
	}
}
