// Package amr implements a block-structured adaptive mesh refinement solver
// for the 2D compressible Euler equations, modeled on the FORESTCLAW /
// p4est design the paper's dataset was generated with: the domain is covered
// by a forest of quadrants, each quadrant carrying an mx×mx cell patch;
// quadrants refine and coarsen dynamically based on a solution gradient
// indicator, with a 2:1 level balance between neighbors.
//
// The package serves two roles in this reproduction:
//
//  1. A real solver (Mesh.Run) for the shock-bubble interaction problem,
//     used by examples, validation tests, and the Fig 1 renderer.
//  2. A performance emulator (ReferenceRun + Emulate) that measures the
//     adaptive work and memory a given (mx, maxlevel) configuration
//     performs, which — combined with the cluster machine model — replaces
//     the paper's proprietary Edison measurement campaign.
package amr

import (
	"fmt"

	"alamr/internal/euler"
)

// NG is the number of ghost cell layers (two, as needed by slope-limited
// reconstruction).
const NG = 2

// Patch is one quadrant's cell data: an Mx×Mx interior with NG ghost layers
// on every side, stored row-major.
type Patch struct {
	Level   int // 1-based refinement level
	PI, PJ  int // quadrant indices within the level's quadrant grid
	mx      int
	u, uNew []euler.Cons
}

// NewPatch allocates a patch at the given level and quadrant position.
func NewPatch(level, pi, pj, mx int) *Patch {
	if mx <= 0 {
		panic(fmt.Sprintf("amr: invalid patch size %d", mx))
	}
	w := mx + 2*NG
	return &Patch{
		Level: level, PI: pi, PJ: pj, mx: mx,
		u:    make([]euler.Cons, w*w),
		uNew: make([]euler.Cons, w*w),
	}
}

// Mx returns the interior cell count per edge.
func (p *Patch) Mx() int { return p.mx }

// idx maps cell coordinates (i, j) with i, j in [-NG, mx+NG) to the backing
// slice. (0,0) is the lower-left interior cell.
func (p *Patch) idx(i, j int) int {
	return (j+NG)*(p.mx+2*NG) + (i + NG)
}

// At returns the state of cell (i, j); ghost cells are addressable with
// negative indices or indices >= Mx.
func (p *Patch) At(i, j int) euler.Cons { return p.u[p.idx(i, j)] }

// Set assigns the state of cell (i, j).
func (p *Patch) Set(i, j int, v euler.Cons) { p.u[p.idx(i, j)] = v }

// swap promotes the freshly computed states to current.
func (p *Patch) swap() { p.u, p.uNew = p.uNew, p.u }

// Key identifies a quadrant in the forest.
type Key struct {
	Level, PI, PJ int
}

// Parent returns the key of the quadrant's parent.
func (k Key) Parent() Key {
	return Key{Level: k.Level - 1, PI: k.PI / 2, PJ: k.PJ / 2}
}

// Children returns the four child keys in (SW, SE, NW, NE) order.
func (k Key) Children() [4]Key {
	l, i, j := k.Level+1, k.PI*2, k.PJ*2
	return [4]Key{
		{l, i, j}, {l, i + 1, j}, {l, i, j + 1}, {l, i + 1, j + 1},
	}
}

// String renders the key for diagnostics.
func (k Key) String() string { return fmt.Sprintf("L%d(%d,%d)", k.Level, k.PI, k.PJ) }
