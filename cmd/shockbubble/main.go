// Command shockbubble runs one adaptive shock-bubble simulation and renders
// the density field and refinement map, reproducing the paper's Fig 1 in a
// terminal (or as PGM images with -pgm).
//
// Usage:
//
//	shockbubble [-mx 8] [-maxlevel 4] [-r0 0.3] [-rhoin 0.1] [-t 0.3]
//	            [-frames 4] [-pgm prefix] [-levels]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"alamr/internal/amr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shockbubble: ")

	mx := flag.Int("mx", 8, "cells per patch edge")
	maxLevel := flag.Int("maxlevel", 4, "maximum refinement level")
	r0 := flag.Float64("r0", 0.3, "bubble radius")
	rhoin := flag.Float64("rhoin", 0.1, "bubble density")
	tEnd := flag.Float64("t", 0.3, "simulation end time")
	frames := flag.Int("frames", 4, "number of rendered frames")
	width := flag.Int("width", 96, "render width in characters")
	pgm := flag.String("pgm", "", "write PGM images with this filename prefix")
	levels := flag.Bool("levels", false, "also render the refinement-level map")
	flag.Parse()

	sb := amr.ShockBubble{R0: *r0, RhoIn: *rhoin}
	if err := sb.Validate(); err != nil {
		log.Fatal(err)
	}
	cfg := sb.DefaultDomain(*mx, *maxLevel)
	mesh, err := amr.NewMesh(cfg)
	if err != nil {
		log.Fatal(err)
	}

	render := func(frame int) {
		fmt.Printf("\nt = %.4f  leaves=%d (per level %v)\n", mesh.Time(), mesh.NumLeaves(), mesh.PatchesPerLevel())
		fmt.Print(mesh.RenderASCII(*width, *width/4))
		if *levels {
			fmt.Println("refinement levels:")
			fmt.Print(mesh.RenderLevels(*width, *width/4))
		}
		if *pgm != "" {
			name := fmt.Sprintf("%s_%02d.pgm", *pgm, frame)
			if err := os.WriteFile(name, []byte(mesh.WritePGM(4**width, *width)), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", name)
		}
	}

	render(0)
	for f := 1; f <= *frames; f++ {
		target := *tEnd * float64(f) / float64(*frames)
		for mesh.Time() < target {
			dt := mesh.MaxStableDt()
			if mesh.Time()+dt > target {
				dt = target - mesh.Time()
			}
			if err := mesh.Step(dt); err != nil {
				log.Fatalf("step failed at t=%g: %v", mesh.Time(), err)
			}
		}
		render(f)
	}

	st := mesh.Stats()
	fmt.Printf("\nwork: steps=%d cellUpdates=%d regrids=%d peakPatches=%d\n",
		st.Steps, st.CellUpdates, st.Regrids, st.PeakPatches)
}
