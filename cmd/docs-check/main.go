// Command docs-check keeps the documentation honest. It fails (non-zero,
// one line per violation) when the docs and the code drift apart:
//
//  1. Every examples/specs/*.json must parse as a CampaignSpec and already
//     be in canonical form — Marshal(Parse(file)) must equal the file byte
//     for byte, so the runnable examples stay pinned to the spec layer's
//     round-trip guarantee.
//  2. Every -flag that README.md or API.md shows on an al-*/amr-gen/
//     shockbubble command line must exist in that binary's actual flag set
//     (taken from `go run ./cmd/<name> -h`), so quick-starts never cite a
//     flag that was renamed or removed.
//  3. Every alamr_* metric name mentioned in DESIGN.md, README.md, or
//     API.md must exist in the observability catalog (a string constant in
//     internal/obs/names.go), so the metrics documentation can never
//     reference a series the code does not export. Family prefixes written
//     with a trailing underscore ("the alamr_serve_ series") are skipped.
//  4. Every json field of the spec's "fidelity" block (engine.FidelitySpec,
//     read by reflection) must be documented in API.md, so the
//     multi-fidelity spec surface cannot drift undocumented.
//  5. Every alamr_fidelity_* string literal in the Go sources must be a
//     cataloged name in internal/obs/names.go — fidelity series are only
//     ever minted through the catalog.
//
// Run from the repository root (it resolves cmd/ and the docs relative to
// the working directory): `go run ./cmd/docs-check` or `make docs-check`.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"

	"alamr/internal/engine"
	_ "alamr/internal/online"    // registers the sim lab + online mode
	_ "alamr/internal/remotelab" // registers the remote lab
)

var problems []string

func problemf(format string, args ...any) {
	problems = append(problems, fmt.Sprintf(format, args...))
}

// checkSpecs pins every example spec to the canonical marshal form.
func checkSpecs() {
	files, err := filepath.Glob("examples/specs/*.json")
	if err != nil || len(files) == 0 {
		problemf("examples/specs: no spec files found (run from the repository root)")
		return
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			problemf("%s: %v", f, err)
			continue
		}
		spec, err := engine.ParseCampaignSpec(data)
		if err != nil {
			problemf("%s: does not parse: %v", f, err)
			continue
		}
		canon, err := spec.Marshal()
		if err != nil {
			problemf("%s: re-marshal: %v", f, err)
			continue
		}
		if string(canon) != string(data) {
			problemf("%s: not in canonical form (re-save it with engine.Marshal)", f)
		}
	}
}

// binaryFlags extracts the flag names a command actually defines, from the
// usage text `go run ./cmd/<name> -h` prints.
func binaryFlags(name string) (map[string]bool, error) {
	out, _ := exec.Command("go", "run", "./cmd/"+name, "-h").CombinedOutput()
	flags := map[string]bool{"h": true, "help": true}
	re := regexp.MustCompile(`(?m)^\s+-([A-Za-z][\w.-]*)`)
	for _, m := range re.FindAllStringSubmatch(string(out), -1) {
		flags[m[1]] = true
	}
	if len(flags) == 2 && len(out) > 0 && !strings.Contains(string(out), "Usage") {
		return nil, fmt.Errorf("could not parse usage output of cmd/%s:\n%s", name, out)
	}
	return flags, nil
}

// docCommandFlags scans one markdown file for command invocations and
// verifies every flag shown against the binary's real flag set. Lines are
// joined across shell continuations (trailing backslash) first; a line
// contributes flags to the last command it names.
func docCommandFlags(path string, commands []string, flagSets map[string]map[string]bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		problemf("%s: %v", path, err)
		return
	}
	joined := regexp.MustCompile(`\\\n\s*`).ReplaceAllString(string(data), " ")
	flagRe := regexp.MustCompile(`^\[?-([A-Za-z][\w.-]*)`)
	for ln, line := range strings.Split(joined, "\n") {
		cmd := ""
		for _, c := range commands {
			if regexp.MustCompile(`(^|[ /\x60])` + regexp.QuoteMeta(c) + `($|[ \x60])`).MatchString(line) {
				cmd = c
			}
		}
		if cmd == "" {
			continue
		}
		for _, field := range strings.Fields(line) {
			m := flagRe.FindStringSubmatch(field)
			if m == nil {
				continue
			}
			if !flagSets[cmd][m[1]] {
				problemf("%s:%d: %s has no -%s flag (line: %q)", path, ln+1, cmd, m[1], strings.TrimSpace(line))
			}
		}
	}
}

// checkMetricNames verifies every alamr_* token in the docs is a cataloged
// metric: a string constant in internal/obs/names.go (the catalog includes
// the dynamically-labeled families that are deliberately absent from
// AllMetricNames). Tokens ending in "_" are family-prefix prose, not names.
func checkMetricNames(paths []string) {
	catalog, err := os.ReadFile("internal/obs/names.go")
	if err != nil {
		problemf("reading metric catalog: %v", err)
		return
	}
	known := map[string]bool{}
	litRe := regexp.MustCompile(`"(alamr_[a-z0-9_]+)"`)
	for _, m := range litRe.FindAllStringSubmatch(string(catalog), -1) {
		known[m[1]] = true
	}
	tokenRe := regexp.MustCompile(`alamr_[a-z0-9_]+`)
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			problemf("%s: %v", path, err)
			continue
		}
		seen := map[string]bool{}
		for ln, line := range strings.Split(string(data), "\n") {
			for _, tok := range tokenRe.FindAllString(line, -1) {
				if strings.HasSuffix(tok, "_") {
					continue
				}
				if !known[tok] && !seen[tok] {
					seen[tok] = true
					problemf("%s:%d: metric %s is not in the obs catalog (internal/obs/names.go)", path, ln+1, tok)
				}
			}
		}
	}
}

// checkFidelitySpecDocs verifies API.md documents the spec's "fidelity"
// block: the section key itself and every json field of engine.FidelitySpec
// (read by reflection, so adding a field fails the check until API.md
// documents it) must appear quoted in API.md.
func checkFidelitySpecDocs() {
	data, err := os.ReadFile("API.md")
	if err != nil {
		problemf("API.md: %v", err)
		return
	}
	doc := string(data)
	want := []string{"fidelity"}
	t := reflect.TypeOf(engine.FidelitySpec{})
	for i := 0; i < t.NumField(); i++ {
		tag, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			problemf("engine.FidelitySpec field %s has no json tag", t.Field(i).Name)
			continue
		}
		want = append(want, tag)
	}
	for _, w := range want {
		if !strings.Contains(doc, `"`+w+`"`) {
			problemf(`API.md: fidelity spec field %q is not documented`, w)
		}
	}
}

// checkFidelityMetricsCataloged scans the Go sources for alamr_fidelity_*
// string literals: each must be declared in internal/obs/names.go, so
// fidelity series are only ever minted through the catalog (and the catalog
// must hold at least one — the family cannot silently disappear).
func checkFidelityMetricsCataloged() {
	catalog, err := os.ReadFile("internal/obs/names.go")
	if err != nil {
		problemf("reading metric catalog: %v", err)
		return
	}
	known := map[string]bool{}
	litRe := regexp.MustCompile(`"(alamr_fidelity_[a-z0-9_]+)"`)
	for _, m := range litRe.FindAllStringSubmatch(string(catalog), -1) {
		known[m[1]] = true
	}
	if len(known) == 0 {
		problemf("internal/obs/names.go: no alamr_fidelity_* metrics cataloged")
	}
	tokenRe := regexp.MustCompile(`alamr_fidelity_[a-z0-9_]+`)
	for _, root := range []string{"internal", "cmd"} {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			if filepath.ToSlash(path) == "internal/obs/names.go" {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				problemf("%s: %v", path, err)
				return nil
			}
			for ln, line := range strings.Split(string(src), "\n") {
				for _, tok := range tokenRe.FindAllString(line, -1) {
					if strings.HasSuffix(tok, "_") {
						continue // family-prefix prose, not a series name
					}
					if !known[tok] {
						problemf("%s:%d: fidelity metric %s is not in the obs catalog (internal/obs/names.go)", path, ln+1, tok)
					}
				}
			}
			return nil
		})
	}
}

func main() {
	checkSpecs()

	// bench-summary is absent: it takes positional file arguments, no flags.
	commands := []string{
		"al-run", "al-eval", "al-online", "al-worker", "al-serve",
		"al-loadtest", "amr-gen", "shockbubble",
	}
	flagSets := map[string]map[string]bool{}
	for _, c := range commands {
		fs, err := binaryFlags(c)
		if err != nil {
			problemf("%v", err)
			fs = nil
		}
		flagSets[c] = fs
	}
	for _, doc := range []string{"README.md", "API.md"} {
		docCommandFlags(doc, commands, flagSets)
	}

	checkMetricNames([]string{"DESIGN.md", "README.md", "API.md"})
	checkFidelitySpecDocs()
	checkFidelityMetricsCataloged()

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docs-check: "+p)
		}
		fmt.Fprintf(os.Stderr, "docs-check: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docs-check: specs canonical, documented flags real, documented metrics cataloged, fidelity surface documented")
}
