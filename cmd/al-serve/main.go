// Command al-serve runs the campaign daemon: a long-lived HTTP service that
// accepts declarative CampaignSpec submissions, schedules them on a bounded
// worker pool with per-tenant fair-share and priority lanes, and persists
// every campaign (spec, state, result) in an on-disk store. A daemon killed
// at any point — including SIGKILL mid-campaign — resumes its in-flight
// work on restart and produces results bitwise identical to an uninterrupted
// run (online campaigns resume from their checkpoint; replay campaigns are
// deterministic re-runs).
//
// The HTTP API is documented in API.md. In short:
//
//	POST   /v1/campaigns             submit {"tenant","priority","spec"}
//	GET    /v1/campaigns?tenant=acme list campaign states
//	GET    /v1/campaigns/{id}        spec + state + result
//	GET    /v1/campaigns/{id}/status state only; ?seq=N&wait_ms=M long-polls
//	DELETE /v1/campaigns/{id}        cancel (stops a running campaign at the
//	                                 next round boundary, keeps the partial
//	                                 result)
//
// Usage:
//
//	al-serve [-addr 127.0.0.1:8765] [-store alamr-serve] [-data dataset.csv]
//	         [-workers N] [-queue-cap 256]
//	         [-metrics-addr 127.0.0.1:9090] [-trace-out trace.jsonl]
//
// -data backs replay-mode campaigns and the "replay" lab; without it the
// daemon still serves online campaigns against the simulator ("sim") and
// remote ("remote") labs and rejects dataset-dependent submissions with 400.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"alamr/internal/dataset"
	"alamr/internal/obs"
	_ "alamr/internal/online" // registers the online mode runner + sim lab
	_ "alamr/internal/remotelab"
	"alamr/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("al-serve: ")

	addr := flag.String("addr", "127.0.0.1:8765", "listen address for the campaign API")
	store := flag.String("store", "alamr-serve", "campaign store directory (created if absent)")
	data := flag.String("data", "", "dataset CSV backing replay campaigns and the replay lab (optional)")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent campaign workers")
	queueCap := flag.Int("queue-cap", 256, "queued-campaign bound before submissions get 429 (negative = unbounded)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address")
	traceOut := flag.String("trace-out", "", "write span trace events as JSONL to this file")
	flag.Parse()

	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "al-serve: -workers must be at least 1")
		os.Exit(2)
	}

	bundle, err := obs.Boot(*metricsAddr, *traceOut)
	if err != nil {
		log.Fatalf("observability setup: %v", err)
	}
	defer bundle.Close()

	var ds *dataset.Dataset
	if *data != "" {
		if ds, err = dataset.LoadFile(*data); err != nil {
			log.Fatalf("loading dataset: %v", err)
		}
	}

	d, err := serve.New(serve.Config{
		StoreDir: *store,
		Addr:     *addr,
		Workers:  *workers,
		QueueCap: *queueCap,
		Dataset:  ds,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("%s: shutting down (in-flight campaigns checkpoint and requeue)", s)
	if err := d.Close(); err != nil {
		log.Fatal(err)
	}
}
