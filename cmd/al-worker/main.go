// Command al-worker is one member of a remote lab fleet: it dials the
// dispatcher embedded in a campaign runner (any command running a spec with
// `"lab": {"name": "remote", ...}`), announces itself, and executes the
// jobs it is handed until the dispatcher hangs up. Measurement noise is
// seeded per job by the dispatcher, so a fleet of any size — including one
// that loses workers mid-campaign — reproduces the single-process
// trajectory exactly.
//
// Usage:
//
//	al-worker -addr 127.0.0.1:7777 -name w0 [-lab synth|sim] [-refnx 256]
//	          [-heartbeat 1] [-slowdown 0]
//
// Start one process per worker; names must be unique across the fleet.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"alamr/internal/online"
	"alamr/internal/remotelab"
)

// options carries every flag value that needs validation, so the checks can
// be exercised by a table test without forking the process.
type options struct {
	addr      string
	name      string
	lab       string
	refNx     int
	heartbeat float64
	slowdown  float64
}

// validate returns the first flag error, or nil.
func (o options) validate() error {
	if o.addr == "" {
		return fmt.Errorf("-addr is required (the campaign dispatcher's listen address)")
	}
	if o.name == "" {
		return fmt.Errorf("-name is required and must be unique across the fleet")
	}
	switch o.lab {
	case "synth", "sim":
	default:
		return fmt.Errorf("-lab must be synth or sim, got %q", o.lab)
	}
	if o.refNx <= 0 {
		return fmt.Errorf("-refnx must be positive, got %d", o.refNx)
	}
	if o.heartbeat <= 0 {
		return fmt.Errorf("-heartbeat must be positive seconds, got %g", o.heartbeat)
	}
	if o.slowdown < 0 {
		return fmt.Errorf("-slowdown must be non-negative seconds, got %g", o.slowdown)
	}
	return nil
}

// executor builds the lab backend the worker runs jobs on.
func (o options) executor() remotelab.Executor {
	if o.lab == "sim" {
		return online.NewSimLab(online.SimLabConfig{RefNx: o.refNx})
	}
	return remotelab.SynthLab{}
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "", "dispatcher address to connect to (required)")
	flag.StringVar(&o.name, "name", "", "unique worker name (required)")
	flag.StringVar(&o.lab, "lab", "synth", "lab backend: synth (analytic) or sim (AMR emulator)")
	flag.IntVar(&o.refNx, "refnx", 256, "sim lab: reference-solution resolution")
	flag.Float64Var(&o.heartbeat, "heartbeat", 1, "liveness-frame interval in seconds")
	flag.Float64Var(&o.slowdown, "slowdown", 0, "stretch each job to at least this many seconds")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "al-worker: %v\n", err)
		os.Exit(2)
	}

	log.Printf("al-worker %s: dialing %s (lab=%s)", o.name, o.addr, o.lab)
	err := remotelab.RunWorker(o.addr, remotelab.WorkerConfig{
		Name:      o.name,
		Executor:  o.executor(),
		Heartbeat: time.Duration(o.heartbeat * float64(time.Second)),
		Slowdown:  time.Duration(o.slowdown * float64(time.Second)),
	})
	if err != nil {
		log.Fatalf("al-worker %s: %v", o.name, err)
	}
	log.Printf("al-worker %s: dispatcher closed, exiting", o.name)
}
