package main

import (
	"strings"
	"testing"

	"alamr/internal/remotelab"
)

func validOptions() options {
	return options{addr: "127.0.0.1:7777", name: "w0", lab: "synth", refNx: 256, heartbeat: 1}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring, "" = valid
	}{
		{name: "valid synth", mutate: func(o *options) {}},
		{name: "valid sim", mutate: func(o *options) { o.lab = "sim" }},
		{name: "valid with slowdown", mutate: func(o *options) { o.slowdown = 0.5 }},
		{name: "missing addr", mutate: func(o *options) { o.addr = "" }, wantErr: "-addr"},
		{name: "missing name", mutate: func(o *options) { o.name = "" }, wantErr: "-name"},
		{name: "unknown lab", mutate: func(o *options) { o.lab = "quantum" }, wantErr: "-lab"},
		{name: "bad refnx", mutate: func(o *options) { o.refNx = 0 }, wantErr: "-refnx"},
		{name: "bad heartbeat", mutate: func(o *options) { o.heartbeat = 0 }, wantErr: "-heartbeat"},
		{name: "negative slowdown", mutate: func(o *options) { o.slowdown = -1 }, wantErr: "-slowdown"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mutate(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid options rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

func TestExecutorSelection(t *testing.T) {
	o := validOptions()
	if _, ok := o.executor().(remotelab.SynthLab); !ok {
		t.Fatalf("synth options built %T", o.executor())
	}
	o.lab = "sim"
	if _, ok := o.executor().(remotelab.SynthLab); ok {
		t.Fatal("sim options built the synth lab")
	}
}
