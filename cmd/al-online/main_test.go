package main

import (
	"strings"
	"testing"
)

func validOptions() options {
	return options{policy: "rgma", n: 25, refNx: 64, retries: 3}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring; "" means valid
	}{
		{"defaults", func(o *options) {}, ""},
		{"zero experiments ok", func(o *options) { o.n = 0 }, ""},
		{"fault cocktail ok", func(o *options) { o.pTransient = 0.3; o.pCorrupt = 0.1; o.rssLimit = 1; o.wallLimit = 60 }, ""},
		{"policy aliases ok", func(o *options) { o.policy = "UNIFORM" }, ""},
		{"spec file skips flag checks", func(o *options) { o.spec = "campaign.json"; o.n = -5 }, ""},
		{"negative n", func(o *options) { o.n = -1 }, "-n must be non-negative"},
		{"negative budget", func(o *options) { o.budget = -0.5 }, "-budget must be non-negative"},
		{"negative memlimit", func(o *options) { o.memLimit = -2 }, "-memlimit must be non-negative"},
		{"zero refnx", func(o *options) { o.refNx = 0 }, "-refnx must be positive"},
		{"zero retries", func(o *options) { o.retries = 0 }, "-retries must be at least 1"},
		{"ptransient negative", func(o *options) { o.pTransient = -0.1 }, "-ptransient must be in [0, 1)"},
		{"ptransient one", func(o *options) { o.pTransient = 1 }, "-ptransient must be in [0, 1)"},
		{"pcorrupt one", func(o *options) { o.pCorrupt = 1 }, "-pcorrupt must be in [0, 1)"},
		{"negative rsslimit", func(o *options) { o.rssLimit = -1 }, "-rsslimit must be non-negative"},
		{"negative walllimit", func(o *options) { o.wallLimit = -1 }, "-walllimit must be non-negative"},
		{"unknown policy", func(o *options) { o.policy = "thompson" }, `unknown policy "thompson"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mutate(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"randuniform", "uniform", "maxsigma", "minpred", "randgoodness", "goodness", "rgma", "RGMA"} {
		if p, err := policyByName(name); err != nil || p == nil {
			t.Errorf("policyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := policyByName("nope"); err == nil {
		t.Error("policyByName accepted an unknown name")
	}
}
