// Command al-online runs a live active-learning campaign against the
// simulation-backed lab: the learner proposes configurations from the full
// 1920-point design grid and each proposal is actually simulated (shock-
// bubble hydrodynamics + machine model) on demand — the "online" system the
// paper contrasts with its offline simulator.
//
// The campaign runtime is fault-tolerant: -checkpoint makes it resumable
// after a crash, and the -ptransient/-pcorrupt/-rsslimit/-walllimit flags
// inject seeded faults (for chaos-testing the runtime or studying how the
// learner copes with OOM-censored observations).
//
// With -metrics-addr the campaign serves live Prometheus metrics (cumulative
// cost, regret, memory headroom, fault counters) and pprof profiling
// endpoints while it runs; -trace-out streams span events as JSONL.
//
// Usage:
//
//	al-online [-policy rgma] [-n 25] [-budget 2] [-memlimit 1] [-seed 17]
//	          [-checkpoint campaign.ckpt] [-retries 3]
//	          [-ptransient 0.1] [-pcorrupt 0.05] [-rsslimit 1] [-walllimit 300]
//	          [-metrics-addr 127.0.0.1:9090] [-trace-out trace.jsonl]
//	al-online -spec examples/specs/online-sim.json
//
// With -spec a declarative campaign file replaces the flags (fault-injection
// flags do not apply; the spec's lab runs unwrapped). -data supplies the
// offline dataset when the spec references the "replay" lab or the paper
// memory rule.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"alamr/internal/core"
	"alamr/internal/engine"
	"alamr/internal/faults"
	"alamr/internal/obs"
	"alamr/internal/online"
	_ "alamr/internal/remotelab" // registers the "remote" lab for -spec files
	"alamr/internal/report"
)

// options carries every flag value that needs validation, so the checks can
// be exercised by a table test without forking the process.
type options struct {
	spec       string
	data       string
	policy     string
	n          int
	budget     float64
	memLimit   float64
	refNx      int
	retries    int
	pTransient float64
	pCorrupt   float64
	rssLimit   float64
	wallLimit  float64
}

// validate returns the first flag error, or nil. It covers every numeric
// range and the policy name; main routes the error to stderr and exits
// non-zero. With -spec the campaign flags are ignored (the file carries its
// own validated campaign), so only the flag path is checked.
func (o options) validate() error {
	if o.spec != "" {
		return nil
	}
	if o.n < 0 {
		return fmt.Errorf("-n must be non-negative, got %d", o.n)
	}
	if o.budget < 0 {
		return fmt.Errorf("-budget must be non-negative, got %g", o.budget)
	}
	if o.memLimit < 0 {
		return fmt.Errorf("-memlimit must be non-negative, got %g", o.memLimit)
	}
	if o.refNx <= 0 {
		return fmt.Errorf("-refnx must be positive, got %d", o.refNx)
	}
	if o.retries < 1 {
		return fmt.Errorf("-retries must be at least 1, got %d", o.retries)
	}
	if o.pTransient < 0 || o.pTransient >= 1 {
		return fmt.Errorf("-ptransient must be in [0, 1), got %g", o.pTransient)
	}
	if o.pCorrupt < 0 || o.pCorrupt >= 1 {
		return fmt.Errorf("-pcorrupt must be in [0, 1), got %g", o.pCorrupt)
	}
	if o.rssLimit < 0 {
		return fmt.Errorf("-rsslimit must be non-negative, got %g", o.rssLimit)
	}
	if o.wallLimit < 0 {
		return fmt.Errorf("-walllimit must be non-negative, got %g", o.wallLimit)
	}
	if _, err := policyByName(o.policy); err != nil {
		return err
	}
	return nil
}

// policyByName resolves a policy through the engine registry (which also
// serves spec files), so flags and specs accept the same names.
func policyByName(name string) (core.Policy, error) {
	return engine.BuildPolicy(engine.PolicySpec{Name: name})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("al-online: ")

	var o options
	flag.StringVar(&o.spec, "spec", "", "campaign spec JSON to run instead of building one from flags")
	flag.StringVar(&o.data, "data", "", "dataset CSV; needed when -spec references the replay lab or the paper memory rule")
	flag.StringVar(&o.policy, "policy", "rgma", "selection policy (randuniform|maxsigma|minpred|randgoodness|rgma)")
	flag.IntVar(&o.n, "n", 25, "maximum AL-selected experiments")
	flag.Float64Var(&o.budget, "budget", 0, "node-hour budget (0 = unlimited)")
	flag.Float64Var(&o.memLimit, "memlimit", 0, "memory limit in MB (0 = none)")
	seed := flag.Int64("seed", 17, "seed")
	flag.IntVar(&o.refNx, "refnx", 64, "physics reference resolution")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: written after every experiment, resumed from if present")
	flag.IntVar(&o.retries, "retries", 3, "per-job attempt budget for retryable faults")
	flag.Float64Var(&o.pTransient, "ptransient", 0, "injected per-attempt transient-failure probability")
	flag.Float64Var(&o.pCorrupt, "pcorrupt", 0, "injected per-attempt corrupted-measurement probability")
	flag.Float64Var(&o.rssLimit, "rsslimit", 0, "injected OOM-killer RSS limit in MB (0 = off)")
	flag.Float64Var(&o.wallLimit, "walllimit", 0, "injected wall-clock kill limit in seconds (0 = off)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while the campaign runs")
	traceOut := flag.String("trace-out", "", "write span trace events as JSONL to this file")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "al-online: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	bundle, err := obs.Boot(*metricsAddr, *traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "al-online: observability setup: %v\n", err)
		os.Exit(2)
	}
	defer bundle.Close()

	var res *online.Result
	refRuns := -1 // physics-reference count; -1 when the spec path owns the lab
	injecting := false
	if o.spec != "" {
		spec, ds, serr := engine.LoadSpecForRun(o.spec, o.data)
		if serr != nil {
			bundle.Close()
			log.Fatal(serr)
		}
		res, err = online.RunSpec(spec, ds)
	} else {
		policy, _ := policyByName(o.policy)
		sim := online.NewSimLab(online.SimLabConfig{RefNx: o.refNx, Seed: *seed})
		var lab online.Lab = sim
		injecting = o.pTransient > 0 || o.pCorrupt > 0 || o.rssLimit > 0 || o.wallLimit > 0
		if injecting {
			lab, err = faults.NewFaultyLab(sim, faults.LabConfig{
				Seed:         *seed,
				RSSLimitMB:   o.rssLimit,
				WallLimitSec: o.wallLimit,
				PTransient:   o.pTransient,
				PCorrupt:     o.pCorrupt,
			})
			if err != nil {
				bundle.Close()
				log.Fatal(err)
			}
		}

		res, err = online.Run(lab, online.Config{
			Policy:         policy,
			MaxExperiments: o.n,
			Budget:         o.budget,
			MemLimitMB:     o.memLimit,
			Seed:           *seed,
			CheckpointPath: *checkpoint,
			Retry:          faults.RetryPolicy{MaxAttempts: o.retries, Seed: *seed},
		})
		refRuns = sim.NumReferenceRuns()
	}
	if err != nil {
		if res == nil {
			bundle.Close()
			log.Fatal(err)
		}
		// A fault-stopped campaign still carries partial results worth
		// reporting; announce the error and fall through.
		log.Printf("campaign stopped early: %v", err)
	}

	if refRuns >= 0 {
		fmt.Printf("campaign: %d experiments, stop=%s, %d physics references simulated\n",
			len(res.Jobs), res.Reason, refRuns)
	} else {
		fmt.Printf("campaign: %d experiments, stop=%s\n", len(res.Jobs), res.Reason)
	}
	if len(res.CumCost) > 0 {
		last := len(res.CumCost) - 1
		fmt.Printf("spent %.4g node-hours (regret %.4g), one-step cost MAPE %.0f%%\n",
			res.CumCost[last], res.CumRegret[last], 100*res.OneStepMAPE())
	}
	for i := range res.ActualCost {
		j := res.Jobs[i+1]
		mark := ""
		if res.Violation[i] {
			mark = "  !! memory"
		}
		if i < len(res.Censored) && res.Censored[i] {
			mark += "  (censored)"
		}
		fmt.Printf("#%02d p=%-2d mx=%-2d ml=%d r0=%.1f rho=%.2f  pred=%.4g actual=%.4g nh%s\n",
			i+1, j.P, j.Mx, j.MaxLevel, j.R0, j.RhoIn, res.PredictedCost[i], res.ActualCost[i], mark)
	}
	if injecting || res.Health.Attempts > res.Health.Successes {
		fmt.Println("\ncampaign health")
		fmt.Print(report.HealthTable(res.Health))
	}
	if t := report.ObsSummary(obs.Default()); t != nil {
		fmt.Println("\nobservability summary")
		if err := t.Write(os.Stdout); err != nil {
			log.Print(err)
		}
	}
	if err != nil {
		bundle.Close()
		os.Exit(1)
	}
}
