// Command al-online runs a live active-learning campaign against the
// simulation-backed lab: the learner proposes configurations from the full
// 1920-point design grid and each proposal is actually simulated (shock-
// bubble hydrodynamics + machine model) on demand — the "online" system the
// paper contrasts with its offline simulator.
//
// Usage:
//
//	al-online [-policy rgma] [-n 25] [-budget 2] [-memlimit 1] [-seed 17]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"alamr/internal/core"
	"alamr/internal/online"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("al-online: ")

	policyName := flag.String("policy", "rgma", "selection policy (randuniform|maxsigma|minpred|randgoodness|rgma)")
	n := flag.Int("n", 25, "maximum AL-selected experiments")
	budget := flag.Float64("budget", 0, "node-hour budget (0 = unlimited)")
	memLimit := flag.Float64("memlimit", 0, "memory limit in MB (0 = none)")
	seed := flag.Int64("seed", 17, "seed")
	refnx := flag.Int("refnx", 64, "physics reference resolution")
	flag.Parse()

	var policy core.Policy
	switch strings.ToLower(*policyName) {
	case "randuniform", "uniform":
		policy = core.RandUniform{}
	case "maxsigma":
		policy = core.MaxSigma{}
	case "minpred":
		policy = core.MinPred{}
	case "randgoodness", "goodness":
		policy = core.RandGoodness{}
	case "rgma":
		policy = core.RGMA{}
	default:
		log.Fatalf("unknown policy %q", *policyName)
	}

	lab := online.NewSimLab(online.SimLabConfig{RefNx: *refnx, Seed: *seed})
	res, err := online.Run(lab, online.Config{
		Policy:         policy,
		MaxExperiments: *n,
		Budget:         *budget,
		MemLimitMB:     *memLimit,
		Seed:           *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("campaign: %d experiments, stop=%s, %d physics references simulated\n",
		len(res.Jobs), res.Reason, lab.NumReferenceRuns())
	if len(res.CumCost) > 0 {
		last := len(res.CumCost) - 1
		fmt.Printf("spent %.4g node-hours (regret %.4g), one-step cost MAPE %.0f%%\n",
			res.CumCost[last], res.CumRegret[last], 100*res.OneStepMAPE())
	}
	for i := range res.ActualCost {
		j := res.Jobs[i+1]
		mark := ""
		if res.Violation[i] {
			mark = "  !! memory"
		}
		fmt.Printf("#%02d p=%-2d mx=%-2d ml=%d r0=%.1f rho=%.2f  pred=%.4g actual=%.4g nh%s\n",
			i+1, j.P, j.Mx, j.MaxLevel, j.R0, j.RhoIn, res.PredictedCost[i], res.ActualCost[i], mark)
	}
}
