// Command al-online runs a live active-learning campaign against the
// simulation-backed lab: the learner proposes configurations from the full
// 1920-point design grid and each proposal is actually simulated (shock-
// bubble hydrodynamics + machine model) on demand — the "online" system the
// paper contrasts with its offline simulator.
//
// The campaign runtime is fault-tolerant: -checkpoint makes it resumable
// after a crash, and the -ptransient/-pcorrupt/-rsslimit/-walllimit flags
// inject seeded faults (for chaos-testing the runtime or studying how the
// learner copes with OOM-censored observations).
//
// Usage:
//
//	al-online [-policy rgma] [-n 25] [-budget 2] [-memlimit 1] [-seed 17]
//	          [-checkpoint campaign.ckpt] [-retries 3]
//	          [-ptransient 0.1] [-pcorrupt 0.05] [-rsslimit 1] [-walllimit 300]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"alamr/internal/core"
	"alamr/internal/faults"
	"alamr/internal/online"
	"alamr/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("al-online: ")

	policyName := flag.String("policy", "rgma", "selection policy (randuniform|maxsigma|minpred|randgoodness|rgma)")
	n := flag.Int("n", 25, "maximum AL-selected experiments")
	budget := flag.Float64("budget", 0, "node-hour budget (0 = unlimited)")
	memLimit := flag.Float64("memlimit", 0, "memory limit in MB (0 = none)")
	seed := flag.Int64("seed", 17, "seed")
	refnx := flag.Int("refnx", 64, "physics reference resolution")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: written after every experiment, resumed from if present")
	retries := flag.Int("retries", 3, "per-job attempt budget for retryable faults")
	pTransient := flag.Float64("ptransient", 0, "injected per-attempt transient-failure probability")
	pCorrupt := flag.Float64("pcorrupt", 0, "injected per-attempt corrupted-measurement probability")
	rssLimit := flag.Float64("rsslimit", 0, "injected OOM-killer RSS limit in MB (0 = off)")
	wallLimit := flag.Float64("walllimit", 0, "injected wall-clock kill limit in seconds (0 = off)")
	flag.Parse()

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "al-online: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *n < 0 {
		fail("-n must be non-negative, got %d", *n)
	}
	if *budget < 0 {
		fail("-budget must be non-negative, got %g", *budget)
	}
	if *memLimit < 0 {
		fail("-memlimit must be non-negative, got %g", *memLimit)
	}
	if *refnx <= 0 {
		fail("-refnx must be positive, got %d", *refnx)
	}
	if *retries < 1 {
		fail("-retries must be at least 1, got %d", *retries)
	}
	if *pTransient < 0 || *pTransient >= 1 {
		fail("-ptransient must be in [0, 1), got %g", *pTransient)
	}
	if *pCorrupt < 0 || *pCorrupt >= 1 {
		fail("-pcorrupt must be in [0, 1), got %g", *pCorrupt)
	}
	if *rssLimit < 0 {
		fail("-rsslimit must be non-negative, got %g", *rssLimit)
	}
	if *wallLimit < 0 {
		fail("-walllimit must be non-negative, got %g", *wallLimit)
	}

	var policy core.Policy
	switch strings.ToLower(*policyName) {
	case "randuniform", "uniform":
		policy = core.RandUniform{}
	case "maxsigma":
		policy = core.MaxSigma{}
	case "minpred":
		policy = core.MinPred{}
	case "randgoodness", "goodness":
		policy = core.RandGoodness{}
	case "rgma":
		policy = core.RGMA{}
	default:
		fail("unknown policy %q", *policyName)
	}

	sim := online.NewSimLab(online.SimLabConfig{RefNx: *refnx, Seed: *seed})
	var lab online.Lab = sim
	injecting := *pTransient > 0 || *pCorrupt > 0 || *rssLimit > 0 || *wallLimit > 0
	if injecting {
		lab = faults.NewFaultyLab(sim, faults.LabConfig{
			Seed:         *seed,
			RSSLimitMB:   *rssLimit,
			WallLimitSec: *wallLimit,
			PTransient:   *pTransient,
			PCorrupt:     *pCorrupt,
		})
	}

	res, err := online.Run(lab, online.Config{
		Policy:         policy,
		MaxExperiments: *n,
		Budget:         *budget,
		MemLimitMB:     *memLimit,
		Seed:           *seed,
		CheckpointPath: *checkpoint,
		Retry:          faults.RetryPolicy{MaxAttempts: *retries, Seed: *seed},
	})
	if err != nil {
		if res == nil {
			log.Fatal(err)
		}
		// A fault-stopped campaign still carries partial results worth
		// reporting; announce the error and fall through.
		log.Printf("campaign stopped early: %v", err)
	}

	fmt.Printf("campaign: %d experiments, stop=%s, %d physics references simulated\n",
		len(res.Jobs), res.Reason, sim.NumReferenceRuns())
	if len(res.CumCost) > 0 {
		last := len(res.CumCost) - 1
		fmt.Printf("spent %.4g node-hours (regret %.4g), one-step cost MAPE %.0f%%\n",
			res.CumCost[last], res.CumRegret[last], 100*res.OneStepMAPE())
	}
	for i := range res.ActualCost {
		j := res.Jobs[i+1]
		mark := ""
		if res.Violation[i] {
			mark = "  !! memory"
		}
		if i < len(res.Censored) && res.Censored[i] {
			mark += "  (censored)"
		}
		fmt.Printf("#%02d p=%-2d mx=%-2d ml=%d r0=%.1f rho=%.2f  pred=%.4g actual=%.4g nh%s\n",
			i+1, j.P, j.Mx, j.MaxLevel, j.R0, j.RhoIn, res.PredictedCost[i], res.ActualCost[i], mark)
	}
	if injecting || res.Health.Attempts > res.Health.Successes {
		fmt.Println("\ncampaign health")
		fmt.Print(report.HealthTable(res.Health))
	}
	if err != nil {
		os.Exit(1)
	}
}
