package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const jsonStream = `{"Action":"start","Package":"alamr/internal/engine"}
{"Action":"output","Package":"alamr/internal/engine","Output":"goos: linux\n"}
{"Action":"output","Test":"BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed","Output":"BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed \t"}
{"Action":"output","Test":"BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed","Output":"       1\t3779947957 ns/op\t  549752 B/op\t    1486 allocs/op\n"}
{"Action":"output","Test":"BenchmarkPredict/50","Output":"BenchmarkPredict/50-8        \t    3482\t    330824 ns/op\n"}
not json at all
BenchmarkPlain            	     100	     12345 ns/op	     128 B/op	       2 allocs/op
`

func TestParseJSONStreamAndPlainText(t *testing.T) {
	text, err := flatten(strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	rs := parse(text)
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	want0 := benchResult{
		Name:  "BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed",
		Iters: 1, NsOp: 3779947957, BOp: 549752, Allocs: 1486,
	}
	if rs[0] != want0 {
		t.Fatalf("result 0 = %+v, want %+v", rs[0], want0)
	}
	if rs[1].Name != "BenchmarkPredict/50" || rs[1].Procs != 8 || rs[1].BOp != -1 || rs[1].Allocs != -1 {
		t.Fatalf("GOMAXPROCS suffix / missing benchmem not handled: %+v", rs[1])
	}
	if rs[2].Name != "BenchmarkPlain" || rs[2].Allocs != 2 {
		t.Fatalf("plain-text line not parsed: %+v", rs[2])
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]benchResult{
		{Name: "BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed-approx",
			Iters: 1, NsOp: 769891086, BOp: 108104, Allocs: 285},
	}).String()
	for _, want := range []string{"ScaleScoring/n=10000", "769.89 ms", "105.57 KiB", "285"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Benchmark") {
		t.Fatalf("Benchmark prefix should be trimmed:\n%s", out)
	}
}

func TestHumanUnits(t *testing.T) {
	if got := humanTime(512); got != "512 ns" {
		t.Fatalf("humanTime(512) = %q", got)
	}
	if got := humanTime(2_500_000); got != "2.50 ms" {
		t.Fatalf("humanTime(2.5e6) = %q", got)
	}
	if got := humanBytes(32016544); got != "30.53 MiB" {
		t.Fatalf("humanBytes = %q", got)
	}
}

// TestProvenanceHeader: the summary leads with the run environment parsed
// from the stream preamble — CPU model, platform, GOMAXPROCS values seen
// on the result lines — plus the summarizer's own go version.
func TestProvenanceHeader(t *testing.T) {
	text := "goos: linux\ngoarch: amd64\ncpu: Intel(R) Xeon(R) CPU @ 2.10GHz\n" +
		"BenchmarkA-1 \t 10\t 1000 ns/op\nBenchmarkB-4 \t 10\t 500 ns/op\n"
	var prov provenance
	parseProv(text, &prov)
	if prov.CPU != "Intel(R) Xeon(R) CPU @ 2.10GHz" || prov.Goos != "linux" || prov.Goarch != "amd64" {
		t.Fatalf("provenance parsed as %+v", prov)
	}
	out := header(prov, parse(text))
	for _, want := range []string{
		"cpu: Intel(R) Xeon(R) CPU @ 2.10GHz",
		"goos/goarch: linux/amd64",
		"GOMAXPROCS: 1, 4",
		"go: go",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("header lacks %q:\n%s", want, out)
		}
	}
}

// TestSpeedupColumn: results carrying a /workers=N axis gain a speedup
// column relative to their own workers=1 row; tables without the axis stay
// at five columns.
func TestSpeedupColumn(t *testing.T) {
	rs := []benchResult{
		{Name: "BenchmarkScale/m=10/pool=streamed/workers=1", Iters: 1, NsOp: 4000, BOp: -1, Allocs: -1},
		{Name: "BenchmarkScale/m=10/pool=streamed/workers=4", Iters: 1, NsOp: 1000, BOp: -1, Allocs: -1},
		{Name: "BenchmarkScale/m=10/pool=materialized/workers=4", Iters: 1, NsOp: 1000, BOp: -1, Allocs: -1},
		{Name: "BenchmarkOther", Iters: 1, NsOp: 123, BOp: -1, Allocs: -1},
	}
	col := speedupCol(rs)
	if col == nil {
		t.Fatal("speedupCol returned nil for a workers-axis table")
	}
	// 1.00x baseline, 4.00x scaled, blank where the group lacks a
	// workers=1 baseline, blank without the axis at all.
	if col[0] != "1.00x" || col[1] != "4.00x" || col[2] != "" || col[3] != "" {
		t.Fatalf("speedup column = %q", col)
	}
	out := table(rs).String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "4.00x") {
		t.Fatalf("rendered table lacks the speedup column:\n%s", out)
	}
	if plain := table(rs[3:]).String(); strings.Contains(plain, "speedup") {
		t.Fatalf("axis-free table should not grow a speedup column:\n%s", plain)
	}
}

// TestRunEmptyInputIsClean: a bench event stream with no benchmark lines —
// empty file, filtered run, interrupted run — renders a note and exits 0,
// so `make bench*` pipelines do not fail on a quiet stream.
func TestRunEmptyInputIsClean(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	noBench := filepath.Join(dir, "nobench.json")
	header := `{"Action":"start","Package":"alamr/internal/engine"}` + "\n"
	if err := os.WriteFile(noBench, []byte(header), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{empty, noBench} {
		var out strings.Builder
		if err := run([]string{path}, &out); err != nil {
			t.Fatalf("%s: run returned %v, want a clean exit", path, err)
		}
		if !strings.Contains(out.String(), "no benchmarks") {
			t.Fatalf("%s: output %q lacks the no-benchmarks note", path, out.String())
		}
	}
}
