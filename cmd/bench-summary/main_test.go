package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const jsonStream = `{"Action":"start","Package":"alamr/internal/engine"}
{"Action":"output","Package":"alamr/internal/engine","Output":"goos: linux\n"}
{"Action":"output","Test":"BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed","Output":"BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed \t"}
{"Action":"output","Test":"BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed","Output":"       1\t3779947957 ns/op\t  549752 B/op\t    1486 allocs/op\n"}
{"Action":"output","Test":"BenchmarkPredict/50","Output":"BenchmarkPredict/50-8        \t    3482\t    330824 ns/op\n"}
not json at all
BenchmarkPlain            	     100	     12345 ns/op	     128 B/op	       2 allocs/op
`

func TestParseJSONStreamAndPlainText(t *testing.T) {
	text, err := flatten(strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	rs := parse(text)
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	want0 := benchResult{
		Name:  "BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed",
		Iters: 1, NsOp: 3779947957, BOp: 549752, Allocs: 1486,
	}
	if rs[0] != want0 {
		t.Fatalf("result 0 = %+v, want %+v", rs[0], want0)
	}
	if rs[1].Name != "BenchmarkPredict/50" || rs[1].BOp != -1 || rs[1].Allocs != -1 {
		t.Fatalf("GOMAXPROCS suffix / missing benchmem not handled: %+v", rs[1])
	}
	if rs[2].Name != "BenchmarkPlain" || rs[2].Allocs != 2 {
		t.Fatalf("plain-text line not parsed: %+v", rs[2])
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]benchResult{
		{Name: "BenchmarkScaleScoring/n=10000/m=1000000/model=sparse/pool=streamed-approx",
			Iters: 1, NsOp: 769891086, BOp: 108104, Allocs: 285},
	}).String()
	for _, want := range []string{"ScaleScoring/n=10000", "769.89 ms", "105.57 KiB", "285"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Benchmark") {
		t.Fatalf("Benchmark prefix should be trimmed:\n%s", out)
	}
}

func TestHumanUnits(t *testing.T) {
	if got := humanTime(512); got != "512 ns" {
		t.Fatalf("humanTime(512) = %q", got)
	}
	if got := humanTime(2_500_000); got != "2.50 ms" {
		t.Fatalf("humanTime(2.5e6) = %q", got)
	}
	if got := humanBytes(32016544); got != "30.53 MiB" {
		t.Fatalf("humanBytes = %q", got)
	}
}

// TestRunEmptyInputIsClean: a bench event stream with no benchmark lines —
// empty file, filtered run, interrupted run — renders a note and exits 0,
// so `make bench*` pipelines do not fail on a quiet stream.
func TestRunEmptyInputIsClean(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	noBench := filepath.Join(dir, "nobench.json")
	header := `{"Action":"start","Package":"alamr/internal/engine"}` + "\n"
	if err := os.WriteFile(noBench, []byte(header), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{empty, noBench} {
		var out strings.Builder
		if err := run([]string{path}, &out); err != nil {
			t.Fatalf("%s: run returned %v, want a clean exit", path, err)
		}
		if !strings.Contains(out.String(), "no benchmarks") {
			t.Fatalf("%s: output %q lacks the no-benchmarks note", path, out.String())
		}
	}
}
