// bench-summary renders the raw `go test -json` benchmark event streams the
// bench Make targets record (BENCH_gp.json, BENCH_al.json) as one aligned,
// human-readable table:
//
//	go test -bench ... -json ./... > BENCH_al.json
//	go run ./cmd/bench-summary BENCH_al.json
//
// With no arguments it reads BENCH_al.json; "-" reads stdin. Inputs that are
// not JSON event streams (plain `go test -bench` output) parse too, so the
// tool composes with a pipe.
//
// The table is preceded by a provenance header (CPU model, goos/goarch,
// GOMAXPROCS, go version) so recorded numbers stay interpretable, and
// benchmarks carrying a `/workers=N` axis get a speedup column relative to
// their own workers=1 row.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"alamr/internal/report"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name   string
	Procs  int // GOMAXPROCS of the run (the -N name suffix); 0 when absent
	Iters  int64
	NsOp   float64
	BOp    int64 // -1 when the run lacked -benchmem
	Allocs int64 // -1 when the run lacked -benchmem
}

// provenance is the run environment `go test -bench` prints before the
// first result; first occurrence wins when streams are concatenated.
type provenance struct {
	CPU, Goos, Goarch string
}

// benchLine matches a Go benchmark result: name, iterations, ns/op, and the
// optional -benchmem columns.
var benchLine = regexp.MustCompile(
	`(?m)^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// provLine matches the environment lines of a benchmark run's preamble.
var provLine = regexp.MustCompile(`(?m)^(goos|goarch|cpu): (.+?)\s*$`)

// workersSeg matches the workers axis the scale suite encodes in
// sub-benchmark names.
var workersSeg = regexp.MustCompile(`/workers=(\d+)`)

// event is the subset of the `go test -json` schema the parser needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// flatten reconstructs the plain benchmark output from a `go test -json`
// stream; non-JSON input passes through untouched, so both formats parse.
func flatten(r io.Reader) (string, error) {
	var b strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			b.Write(line)
			b.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			b.WriteString(ev.Output)
		}
	}
	return b.String(), sc.Err()
}

// parse extracts every benchmark result from flattened output. Benchmark
// names keep their full sub-benchmark path (the scale suite encodes
// n/m/model/pool/workers there); the trailing -GOMAXPROCS suffix moves into
// the Procs field.
func parse(text string) []benchResult {
	var out []benchResult
	for _, m := range benchLine.FindAllStringSubmatch(text, -1) {
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		name, procs := trimProcs(m[1])
		r := benchResult{Name: name, Procs: procs, Iters: iters, NsOp: ns, BOp: -1, Allocs: -1}
		if m[4] != "" {
			r.BOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.Allocs, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out = append(out, r)
	}
	return out
}

// parseProv folds the preamble environment lines into p, first value wins.
func parseProv(text string, p *provenance) {
	for _, m := range provLine.FindAllStringSubmatch(text, -1) {
		switch m[1] {
		case "cpu":
			if p.CPU == "" {
				p.CPU = m[2]
			}
		case "goos":
			if p.Goos == "" {
				p.Goos = m[2]
			}
		case "goarch":
			if p.Goarch == "" {
				p.Goarch = m[2]
			}
		}
	}
}

// trimProcs splits the -N GOMAXPROCS suffix Go appends to benchmark names
// off the name; procs is 0 when the name carries no suffix.
func trimProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}

// humanTime renders ns/op at the natural scale.
func humanTime(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2f s", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2f µs", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}

// humanBytes renders B/op at the natural scale.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// speedupCol computes each result's speedup over the workers=1 run of the
// same benchmark (the name with the /workers=N segment removed). Returns
// nil when no result carries a workers axis, so plain tables stay narrow.
func speedupCol(results []benchResult) []string {
	base := map[string]float64{}
	for _, r := range results {
		if m := workersSeg.FindStringSubmatch(r.Name); m != nil && m[1] == "1" {
			key := workersSeg.ReplaceAllString(r.Name, "")
			if _, ok := base[key]; !ok {
				base[key] = r.NsOp
			}
		}
	}
	out := make([]string, len(results))
	any := false
	for i, r := range results {
		if !workersSeg.MatchString(r.Name) {
			continue
		}
		if b, ok := base[workersSeg.ReplaceAllString(r.Name, "")]; ok && r.NsOp > 0 {
			out[i] = fmt.Sprintf("%.2fx", b/r.NsOp)
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// header renders the provenance block: everything needed to interpret the
// numbers — what CPU, what platform, how many procs the runs used, and the
// toolchain this summary was built with.
func header(p provenance, results []benchResult) string {
	var b strings.Builder
	if p.CPU != "" {
		fmt.Fprintf(&b, "cpu: %s\n", p.CPU)
	}
	if p.Goos != "" || p.Goarch != "" {
		fmt.Fprintf(&b, "goos/goarch: %s/%s\n", p.Goos, p.Goarch)
	}
	procs := map[int]bool{}
	for _, r := range results {
		if r.Procs > 0 {
			procs[r.Procs] = true
		}
	}
	if len(procs) > 0 {
		var vals []string
		for _, n := range sortedInts(procs) {
			vals = append(vals, strconv.Itoa(n))
		}
		fmt.Fprintf(&b, "GOMAXPROCS: %s\n", strings.Join(vals, ", "))
	}
	fmt.Fprintf(&b, "go: %s\n", runtime.Version())
	return b.String()
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// table renders parsed results, preserving input order (the bench targets
// emit related sub-benchmarks adjacently). The speedup column appears only
// when a workers axis is present.
func table(results []benchResult) *report.Table {
	speedup := speedupCol(results)
	head := []string{"benchmark", "iters", "time/op", "mem/op", "allocs/op"}
	if speedup != nil {
		head = append(head, "speedup")
	}
	t := &report.Table{Header: head}
	for i, r := range results {
		mem, allocs := "", ""
		if r.BOp >= 0 {
			mem = humanBytes(r.BOp)
		}
		if r.Allocs >= 0 {
			allocs = strconv.FormatInt(r.Allocs, 10)
		}
		row := []any{strings.TrimPrefix(r.Name, "Benchmark"), r.Iters, humanTime(r.NsOp), mem, allocs}
		if speedup != nil {
			row = append(row, speedup[i])
		}
		t.Add(row...)
	}
	return t
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		args = []string{"BENCH_al.json"}
	}
	var results []benchResult
	var prov provenance
	for _, path := range args {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		text, err := flatten(r)
		if err != nil {
			return err
		}
		parseProv(text, &prov)
		results = append(results, parse(text)...)
	}
	if len(results) == 0 {
		// An empty or benchmark-free event stream is a normal outcome of a
		// filtered or interrupted bench run, not a tool failure: note it
		// and exit clean so Make pipelines keep going.
		_, err := fmt.Fprintf(stdout, "bench-summary: no benchmarks in %s\n", strings.Join(args, ", "))
		return err
	}
	if _, err := fmt.Fprint(stdout, header(prov, results)); err != nil {
		return err
	}
	_, err := fmt.Fprint(stdout, table(results).String())
	return err
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
