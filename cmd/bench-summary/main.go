// bench-summary renders the raw `go test -json` benchmark event streams the
// bench Make targets record (BENCH_gp.json, BENCH_al.json) as one aligned,
// human-readable table:
//
//	go test -bench ... -json ./... > BENCH_al.json
//	go run ./cmd/bench-summary BENCH_al.json
//
// With no arguments it reads BENCH_al.json; "-" reads stdin. Inputs that are
// not JSON event streams (plain `go test -bench` output) parse too, so the
// tool composes with a pipe.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"

	"alamr/internal/report"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name   string
	Iters  int64
	NsOp   float64
	BOp    int64 // -1 when the run lacked -benchmem
	Allocs int64 // -1 when the run lacked -benchmem
}

// benchLine matches a Go benchmark result: name, iterations, ns/op, and the
// optional -benchmem columns.
var benchLine = regexp.MustCompile(
	`(?m)^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// event is the subset of the `go test -json` schema the parser needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// flatten reconstructs the plain benchmark output from a `go test -json`
// stream; non-JSON input passes through untouched, so both formats parse.
func flatten(r io.Reader) (string, error) {
	var b strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			b.Write(line)
			b.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			b.WriteString(ev.Output)
		}
	}
	return b.String(), sc.Err()
}

// parse extracts every benchmark result from flattened output. Benchmark
// names keep their full sub-benchmark path (the scale suite encodes
// n/m/model/pool there) but drop the trailing -GOMAXPROCS suffix.
func parse(text string) []benchResult {
	var out []benchResult
	for _, m := range benchLine.FindAllStringSubmatch(text, -1) {
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Name: trimProcs(m[1]), Iters: iters, NsOp: ns, BOp: -1, Allocs: -1}
		if m[4] != "" {
			r.BOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.Allocs, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out = append(out, r)
	}
	return out
}

// trimProcs drops the -N GOMAXPROCS suffix Go appends to benchmark names.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// humanTime renders ns/op at the natural scale.
func humanTime(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2f s", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2f µs", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}

// humanBytes renders B/op at the natural scale.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// table renders parsed results, preserving input order (the bench targets
// emit related sub-benchmarks adjacently).
func table(results []benchResult) *report.Table {
	t := &report.Table{Header: []string{"benchmark", "iters", "time/op", "mem/op", "allocs/op"}}
	for _, r := range results {
		mem, allocs := "", ""
		if r.BOp >= 0 {
			mem = humanBytes(r.BOp)
		}
		if r.Allocs >= 0 {
			allocs = strconv.FormatInt(r.Allocs, 10)
		}
		t.Add(strings.TrimPrefix(r.Name, "Benchmark"), r.Iters, humanTime(r.NsOp), mem, allocs)
	}
	return t
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		args = []string{"BENCH_al.json"}
	}
	var results []benchResult
	for _, path := range args {
		var r io.Reader
		if path == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		text, err := flatten(r)
		if err != nil {
			return err
		}
		results = append(results, parse(text)...)
	}
	if len(results) == 0 {
		// An empty or benchmark-free event stream is a normal outcome of a
		// filtered or interrupted bench run, not a tool failure: note it
		// and exit clean so Make pipelines keep going.
		_, err := fmt.Fprintf(stdout, "bench-summary: no benchmarks in %s\n", strings.Join(args, ", "))
		return err
	}
	_, err := fmt.Fprint(stdout, table(results).String())
	return err
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
