package main

import (
	"strings"
	"testing"

	"alamr/internal/engine"
)

func validOptions() options {
	return options{policy: "rgma", base: 10, nInit: 50, nTest: 200, iters: 150, seed: 1}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring; "" means valid
	}{
		{"defaults", func(o *options) {}, ""},
		{"policy alias ok", func(o *options) { o.policy = "UNIFORM" }, ""},
		{"memlimit disabled ok", func(o *options) { o.memLimit = -1 }, ""},
		{"zero iterations ok", func(o *options) { o.iters = 0 }, ""},
		{"spec file skips flag checks", func(o *options) { o.spec = "campaign.json"; o.nInit = 0 }, ""},
		{"zero ninit", func(o *options) { o.nInit = 0 }, "-ninit must be at least 1"},
		{"zero ntest", func(o *options) { o.nTest = 0 }, "-ntest must be at least 1"},
		{"negative iters", func(o *options) { o.iters = -1 }, "-iters must be non-negative"},
		{"base one", func(o *options) { o.base = 1 }, "-base must be greater than 1"},
		{"unknown policy", func(o *options) { o.policy = "zigzag" }, `unknown policy "zigzag"`},
		{"sparse model ok", func(o *options) { o.model = "sparse"; o.inducing = 128 }, ""},
		{"treed model ok", func(o *options) { o.model = "treed"; o.leafSize = 256; o.rebalance = 3 }, ""},
		{"unknown model", func(o *options) { o.model = "magic" }, `unknown model "magic"`},
		{"negative inducing", func(o *options) { o.model = "sparse"; o.inducing = -1 }, "inducing must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mutate(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestCampaignSpecFromFlags pins the flag→spec translation, in particular
// the -memlimit convention (0 = paper rule, negative = disabled).
func TestCampaignSpecFromFlags(t *testing.T) {
	o := validOptions()
	spec := o.campaignSpec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("flag-built spec invalid: %v", err)
	}
	if spec.Mode != engine.ModeReplay || spec.Replay == nil {
		t.Fatalf("flag-built spec not replay mode: %+v", spec)
	}
	if !spec.MemLimitPaperRule || spec.MemLimitMB != 0 {
		t.Errorf("memlimit 0 must select the paper rule: %+v", spec)
	}

	o.memLimit = -1
	if s := o.campaignSpec(); s.MemLimitPaperRule || s.MemLimitMB != 0 {
		t.Errorf("negative memlimit must disable the limit: %+v", s)
	}

	o.memLimit = 2.5
	if s := o.campaignSpec(); s.MemLimitPaperRule || s.MemLimitMB != 2.5 {
		t.Errorf("positive memlimit must pass through: %+v", s)
	}

	if s := o.campaignSpec(); s.Model != nil {
		t.Errorf("no model flags must leave the spec's model unset (exact default): %+v", s.Model)
	}
	o.model, o.inducing = "sparse", 128
	if s := o.campaignSpec(); s.Model == nil || s.Model.Name != "sparse" || s.Model.Inducing != 128 {
		t.Errorf("model flags lost in translation: %+v", s.Model)
	}

	o = validOptions()
	o.policy, o.base, o.log2p = "randgoodness", 100, true
	s := o.campaignSpec()
	if s.Policy.Base != 100 || !s.Log2P {
		t.Errorf("policy tunables lost in translation: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("tuned spec invalid: %v", err)
	}
}
