// Command al-run executes a single active-learning trajectory on a dataset
// and prints its selection log and learning curves.
//
// With -metrics-addr the run serves live Prometheus metrics and pprof
// profiling endpoints while it executes; -trace-out streams phase span
// events (fit/score/select/run/feed) as JSONL.
//
// Usage:
//
//	al-run -data dataset.csv -policy rgma [-ninit 50] [-ntest 200]
//	       [-iters 150] [-memlimit 0] [-seed 1] [-log2p] [-verbose]
//	       [-metrics-addr 127.0.0.1:9090] [-trace-out trace.jsonl]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"alamr/internal/core"
	"alamr/internal/dataset"
	"alamr/internal/obs"
	"alamr/internal/report"
)

func policyByName(name string, base float64) (core.Policy, error) {
	switch strings.ToLower(name) {
	case "randuniform", "uniform":
		return core.RandUniform{}, nil
	case "maxsigma":
		return core.MaxSigma{}, nil
	case "minpred":
		return core.MinPred{}, nil
	case "randgoodness", "goodness":
		return core.RandGoodness{Base: base}, nil
	case "rgma":
		return core.RGMA{Base: base}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want randuniform|maxsigma|minpred|randgoodness|rgma)", name)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("al-run: ")

	data := flag.String("data", "dataset.csv", "dataset CSV (from amr-gen)")
	policyName := flag.String("policy", "rgma", "selection policy")
	base := flag.Float64("base", 10, "goodness base for randgoodness/rgma")
	nInit := flag.Int("ninit", 50, "initial partition size")
	nTest := flag.Int("ntest", 200, "test partition size")
	iters := flag.Int("iters", 150, "AL iterations (0 = exhaust pool)")
	memLimit := flag.Float64("memlimit", 0, "memory limit in MB (0 = the paper's rule; -1 = disabled)")
	seed := flag.Int64("seed", 1, "seed")
	log2p := flag.Bool("log2p", false, "use log2(p) feature transform")
	verbose := flag.Bool("verbose", false, "print every selection")
	jsonOut := flag.String("json", "", "write the full trajectory as JSON to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while the run executes")
	traceOut := flag.String("trace-out", "", "write span trace events as JSONL to this file")
	flag.Parse()

	bundle, err := obs.Boot(*metricsAddr, *traceOut)
	if err != nil {
		log.Fatalf("observability setup: %v", err)
	}
	defer bundle.Close()

	ds, err := dataset.LoadFile(*data)
	if err != nil {
		log.Fatalf("loading dataset: %v (generate one with amr-gen)", err)
	}
	policy, err := policyByName(*policyName, *base)
	if err != nil {
		log.Fatal(err)
	}

	limit := *memLimit
	switch {
	case limit == 0:
		limit = core.PaperMemLimitMB(ds)
		fmt.Printf("memory limit (paper rule): %.4g MB\n", limit)
	case limit < 0:
		limit = 0
	}

	part, err := dataset.Split(ds, *nInit, *nTest, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := core.RunTrajectory(ds, part, core.LoopConfig{
		Policy:        policy,
		MaxIterations: *iters,
		MemLimitMB:    limit,
		Seed:          *seed,
		Log2P:         *log2p,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy=%s ninit=%d iterations=%d stop=%s\n", tr.Policy, tr.NInit, tr.Iterations(), tr.Reason)
	fmt.Printf("initial RMSE: cost=%.4g mem=%.4g\n", tr.InitCostRMSE, tr.InitMemRMSE)
	n := tr.Iterations()
	if n > 0 {
		fmt.Printf("final RMSE:   cost=%.4g mem=%.4g\n", tr.CostRMSE[n-1], tr.MemRMSE[n-1])
		fmt.Printf("cumulative cost=%.4g node-hours, cumulative regret=%.4g\n", tr.CumCost[n-1], tr.CumRegret[n-1])
		violations := 0
		for _, v := range tr.Violation {
			if v {
				violations++
			}
		}
		fmt.Printf("memory-limit violations: %d of %d selections\n", violations, n)
	}

	if *verbose {
		tb := &report.Table{Header: []string{"iter", "job", "cost (nh)", "mem (MB)", "violated", "cost RMSE"}}
		for i, idx := range tr.Selected {
			j := ds.Jobs[idx]
			tb.Add(i, fmt.Sprintf("p=%d mx=%d ml=%d r0=%.2g rho=%.2g", j.P, j.Mx, j.MaxLevel, j.R0, j.RhoIn),
				j.CostNH, j.MemMB, fmt.Sprintf("%v", tr.Violation[i]), tr.CostRMSE[i])
		}
		fmt.Println()
		if err := tb.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	fmt.Println()
	fmt.Print(report.ASCIIChart("cost RMSE / cumulative regret",
		[]string{"cost RMSE", "cum regret"},
		[][]float64{tr.CostRMSE, tr.CumRegret}, 64, 14))

	if t := report.ObsSummary(obs.Default()); t != nil {
		fmt.Println("\nobservability summary")
		if err := t.Write(os.Stdout); err != nil {
			log.Print(err)
		}
	}
}
