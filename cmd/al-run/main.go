// Command al-run executes a single active-learning trajectory on a dataset
// and prints its selection log and learning curves.
//
// The campaign itself is declarative: the flags assemble an
// engine.CampaignSpec, and -spec runs a spec file directly (see
// examples/specs/). Flags and spec files configure the identical campaign.
//
// With -metrics-addr the run serves live Prometheus metrics and pprof
// profiling endpoints while it executes; -trace-out streams phase span
// events (fit/score/select/run/feed) as JSONL.
//
// Usage:
//
//	al-run -data dataset.csv -policy rgma [-ninit 50] [-ntest 200]
//	       [-iters 150] [-memlimit 0] [-seed 1] [-log2p] [-verbose]
//	       [-model sparse -inducing 128] [-model treed -leafsize 256]
//	       [-metrics-addr 127.0.0.1:9090] [-trace-out trace.jsonl]
//	al-run -data dataset.csv -spec examples/specs/replay-rgma.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/obs"
	"alamr/internal/report"
)

// options carries every flag value that needs validation, so the checks can
// be exercised by a table test without forking the process.
type options struct {
	spec      string
	policy    string
	base      float64
	nInit     int
	nTest     int
	iters     int
	memLimit  float64
	seed      int64
	log2p     bool
	model     string
	inducing  int
	leafSize  int
	rebalance int
}

// validate returns the first flag error, or nil. With -spec the campaign
// flags are ignored (the file carries its own validated campaign), so only
// the flag path is checked. main routes the error to stderr and exits 2.
func (o options) validate() error {
	if o.spec != "" {
		return nil
	}
	if o.nInit < 1 {
		return fmt.Errorf("-ninit must be at least 1, got %d", o.nInit)
	}
	if o.nTest < 1 {
		return fmt.Errorf("-ntest must be at least 1, got %d", o.nTest)
	}
	if o.iters < 0 {
		return fmt.Errorf("-iters must be non-negative, got %d", o.iters)
	}
	if o.base <= 1 {
		return fmt.Errorf("-base must be greater than 1, got %g", o.base)
	}
	if _, err := engine.BuildPolicy(engine.PolicySpec{Name: o.policy, Base: o.base}); err != nil {
		return err
	}
	// The assembled spec re-validates everything, which is the only exported
	// path that checks the surrogate-model knobs (-model, -inducing, ...).
	spec := o.campaignSpec()
	return spec.Validate()
}

// modelSpec translates the surrogate flags into the spec's model field. All
// zero values mean "unset": the spec carries no model and the engine runs
// the default exact GP, exactly as before the flags existed.
func (o options) modelSpec() *engine.ModelSpec {
	if o.model == "" && o.inducing == 0 && o.leafSize == 0 && o.rebalance == 0 {
		return nil
	}
	return &engine.ModelSpec{Name: o.model, Inducing: o.inducing, LeafSize: o.leafSize, Rebalance: o.rebalance}
}

// campaignSpec translates the flag values into the declarative campaign the
// engine executes. The -memlimit convention maps onto the spec's two fields:
// 0 selects the paper's 95%-of-max rule, negative disables the limit.
func (o options) campaignSpec() engine.CampaignSpec {
	spec := engine.CampaignSpec{
		Version:       engine.SpecVersion,
		Mode:          engine.ModeReplay,
		Policy:        engine.PolicySpec{Name: o.policy, Base: o.base},
		Seed:          o.seed,
		MaxIterations: o.iters,
		Log2P:         o.log2p,
		Model:         o.modelSpec(),
		Replay:        &engine.ReplaySpec{NInit: o.nInit, NTest: o.nTest},
	}
	switch {
	case o.memLimit == 0:
		spec.MemLimitPaperRule = true
	case o.memLimit > 0:
		spec.MemLimitMB = o.memLimit
	}
	return spec
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("al-run: ")

	var o options
	data := flag.String("data", "dataset.csv", "dataset CSV (from amr-gen)")
	flag.StringVar(&o.spec, "spec", "", "campaign spec JSON to run instead of building one from flags")
	flag.StringVar(&o.policy, "policy", "rgma", "selection policy")
	flag.Float64Var(&o.base, "base", 10, "goodness base for randgoodness/rgma")
	flag.IntVar(&o.nInit, "ninit", 50, "initial partition size")
	flag.IntVar(&o.nTest, "ntest", 200, "test partition size")
	flag.IntVar(&o.iters, "iters", 150, "AL iterations (0 = exhaust pool)")
	flag.Float64Var(&o.memLimit, "memlimit", 0, "memory limit in MB (0 = the paper's rule; -1 = disabled)")
	flag.Int64Var(&o.seed, "seed", 1, "seed")
	flag.BoolVar(&o.log2p, "log2p", false, "use log2(p) feature transform")
	flag.StringVar(&o.model, "model", "", "surrogate model: exact, sparse, treed (default exact)")
	flag.IntVar(&o.inducing, "inducing", 0, "sparse model inducing-point budget (0 = model default)")
	flag.IntVar(&o.leafSize, "leafsize", 0, "treed model leaf capacity (0 = model default)")
	flag.IntVar(&o.rebalance, "rebalance", 0, "treed model re-split trigger factor (0 = model default)")
	verbose := flag.Bool("verbose", false, "print every selection")
	jsonOut := flag.String("json", "", "write the full trajectory as JSON to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while the run executes")
	traceOut := flag.String("trace-out", "", "write span trace events as JSONL to this file")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "al-run: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	bundle, err := obs.Boot(*metricsAddr, *traceOut)
	if err != nil {
		log.Fatalf("observability setup: %v", err)
	}
	defer bundle.Close()

	var ds *dataset.Dataset
	spec := o.campaignSpec()
	if o.spec != "" {
		spec, ds, err = engine.LoadSpecForRun(o.spec, *data)
		if err != nil {
			log.Fatal(err)
		}
		if spec.Mode != engine.ModeReplay {
			log.Fatalf("%s is a %s-mode spec; al-run executes replay campaigns (use al-online)", o.spec, spec.Mode)
		}
	} else if ds, err = dataset.LoadFile(*data); err != nil {
		log.Fatalf("loading dataset: %v (generate one with amr-gen)", err)
	}
	if spec.MemLimitPaperRule {
		fmt.Printf("memory limit (paper rule): %.4g MB\n", engine.PaperMemLimitMB(ds))
	}

	tr, err := engine.RunReplaySpec(ds, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy=%s ninit=%d iterations=%d stop=%s\n", tr.Policy, tr.NInit, tr.Iterations(), tr.Reason)
	fmt.Printf("initial RMSE: cost=%.4g mem=%.4g\n", tr.InitCostRMSE, tr.InitMemRMSE)
	n := tr.Iterations()
	if n > 0 {
		fmt.Printf("final RMSE:   cost=%.4g mem=%.4g\n", tr.CostRMSE[n-1], tr.MemRMSE[n-1])
		fmt.Printf("cumulative cost=%.4g node-hours, cumulative regret=%.4g\n", tr.CumCost[n-1], tr.CumRegret[n-1])
		violations := 0
		for _, v := range tr.Violation {
			if v {
				violations++
			}
		}
		fmt.Printf("memory-limit violations: %d of %d selections\n", violations, n)
	}

	if *verbose {
		tb := &report.Table{Header: []string{"iter", "job", "cost (nh)", "mem (MB)", "violated", "cost RMSE"}}
		for i, idx := range tr.Selected {
			j := ds.Jobs[idx]
			tb.Add(i, fmt.Sprintf("p=%d mx=%d ml=%d r0=%.2g rho=%.2g", j.P, j.Mx, j.MaxLevel, j.R0, j.RhoIn),
				j.CostNH, j.MemMB, fmt.Sprintf("%v", tr.Violation[i]), tr.CostRMSE[i])
		}
		fmt.Println()
		if err := tb.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	fmt.Println()
	fmt.Print(report.ASCIIChart("cost RMSE / cumulative regret",
		[]string{"cost RMSE", "cum regret"},
		[][]float64{tr.CostRMSE, tr.CumRegret}, 64, 14))

	if t := report.ObsSummary(obs.Default()); t != nil {
		fmt.Println("\nobservability summary")
		if err := t.Write(os.Stdout); err != nil {
			log.Print(err)
		}
	}
}
