// Command al-loadtest gates the campaign daemon's serving latency: it
// floods a daemon with small campaign submissions from concurrent clients
// while hammering the status endpoint, then checks the measured p99 submit
// and poll latencies against hard ceilings. The full latency report is
// written as JSON (BENCH_serve.json by convention) and a summary table is
// printed; any violated gate exits non-zero, which is how `make serve-smoke`
// turns a latency regression into a CI failure.
//
// By default the tool is self-contained: it starts an embedded daemon on an
// ephemeral port with a temporary store, runs the load, and tears it down.
// Point -addr at an already-running al-serve to load-test that instead (the
// target daemon must have been started with a dataset that can serve the
// submitted specs).
//
// Usage:
//
//	al-loadtest -data dataset.csv [-campaigns 32] [-submitters 4] [-pollers 4]
//	            [-tenants acme,globex] [-iters 3]
//	            [-p99-submit-ms 250] [-p99-poll-ms 100]
//	            [-out BENCH_serve.json]
//	al-loadtest -addr 127.0.0.1:8765 -data dataset.csv [...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"alamr/internal/dataset"
	_ "alamr/internal/online" // registers the online mode runner + sim lab
	"alamr/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("al-loadtest: ")

	addr := flag.String("addr", "", "daemon address to load-test; empty starts an embedded daemon")
	data := flag.String("data", "dataset.csv", "dataset CSV backing the submitted replay campaigns")
	campaigns := flag.Int("campaigns", 32, "total campaigns to submit")
	submitters := flag.Int("submitters", 4, "concurrent submitting clients")
	pollers := flag.Int("pollers", 4, "concurrent status-polling clients")
	tenants := flag.String("tenants", "acme,globex", "comma-separated tenants to cycle across submissions")
	iters := flag.Int("iters", 3, "AL iterations per submitted campaign (small: queue dynamics, not GP math)")
	p99Submit := flag.Float64("p99-submit-ms", 250, "p99 submit latency gate in ms (0 disables)")
	p99Poll := flag.Float64("p99-poll-ms", 100, "p99 status-poll latency gate in ms (0 disables)")
	workers := flag.Int("workers", runtime.NumCPU(), "campaign workers for the embedded daemon")
	out := flag.String("out", "BENCH_serve.json", "write the JSON latency report here (empty skips)")
	flag.Parse()

	ds, err := dataset.LoadFile(*data)
	if err != nil {
		log.Fatalf("loading dataset: %v (generate one with amr-gen)", err)
	}

	target := *addr
	if target == "" {
		storeDir, err := os.MkdirTemp("", "al-loadtest-store-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(storeDir)
		d, err := serve.New(serve.Config{
			StoreDir: storeDir,
			Workers:  *workers,
			Dataset:  ds,
			Logf:     func(string, ...any) {}, // keep daemon chatter out of the report
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := d.Start(); err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		target = d.Addr()
		log.Printf("embedded daemon on %s (store %s, %d workers)", target, storeDir, *workers)
	}

	// Small replay campaigns with distinct seeds: real scheduling and
	// persistence work per submission, trivial per-campaign compute.
	var specs []json.RawMessage
	for i := 0; i < 8; i++ {
		specs = append(specs, json.RawMessage(fmt.Sprintf(
			`{"version":1,"name":"loadtest-%d","mode":"replay","policy":{"name":"maxsigma"},"seed":%d,"max_iterations":%d,"replay":{"n_init":8,"n_test":20}}`,
			i, i+1, *iters)))
	}

	rep, err := serve.RunLoadTest(serve.LoadConfig{
		Addr:         target,
		Specs:        specs,
		Tenants:      strings.Split(*tenants, ","),
		Campaigns:    *campaigns,
		Submitters:   *submitters,
		Pollers:      *pollers,
		P99SubmitMax: time.Duration(*p99Submit * float64(time.Millisecond)),
		P99PollMax:   time.Duration(*p99Poll * float64(time.Millisecond)),
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *out)
	}
	if err := rep.Table().Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
	for _, g := range rep.Gates {
		verdict := "ok"
		if !g.Passed {
			verdict = "VIOLATED"
		}
		fmt.Printf("gate %-12s limit %8.1fms  actual %8.2fms  %s\n", g.Name, g.LimitMs, g.ActualMs, verdict)
	}
	if rep.Failed > 0 {
		log.Printf("%d campaigns did not finish in state done", rep.Failed)
	}
	if !rep.Passed {
		os.Exit(1)
	}
}
