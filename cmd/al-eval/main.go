// Command al-eval regenerates the paper's evaluation: Table I, Figures 1-4,
// the §V-C violation analysis, and the §V-D ablations.
//
// Usage:
//
//	al-eval -data dataset.csv -fig all [-partitions 10] [-iters 150]
//	        [-csv out/] [-seed 1] [-metrics-addr 127.0.0.1:9090]
//	        [-trace-out trace.jsonl]
//	al-eval -data dataset.csv -spec examples/specs/replay-rgma.json
//
// With -generate, the dataset is regenerated in-process instead of loaded.
// With -spec, a single campaign spec (replay or online mode) is executed
// instead of the figure suite and summarized. -metrics-addr serves live
// Prometheus metrics and pprof endpoints for the duration of the
// evaluation — useful for profiling the long ablation runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/engine"
	"alamr/internal/experiments"
	"alamr/internal/obs"
	"alamr/internal/online"
	"alamr/internal/report"
)

// figNames are the tokens -fig accepts, in help order.
var figNames = []string{
	"all", "table1", "fig1", "fig2", "fig3", "fig4", "violations", "online",
	"batch", "ablations", "kernels", "log2p", "base", "memlimit", "cadence",
	"surrogate", "weighted",
}

// options carries every flag value that needs validation, so the checks can
// be exercised by a table test without forking the process.
type options struct {
	spec       string
	fig        string
	partitions int
	iters      int
	workers    int
}

// validate returns the first flag error, or nil. With -spec the suite flags
// are ignored (the file carries its own validated campaign), so only the
// suite path is checked. main routes the error to stderr and exits 2.
func (o options) validate() error {
	if o.spec != "" {
		return nil
	}
	if o.partitions < 1 {
		return fmt.Errorf("-partitions must be at least 1, got %d", o.partitions)
	}
	if o.iters < 1 {
		return fmt.Errorf("-iters must be at least 1, got %d", o.iters)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", o.workers)
	}
	known := map[string]bool{}
	for _, name := range figNames {
		known[name] = true
	}
	for _, f := range strings.Split(o.fig, ",") {
		if !known[strings.TrimSpace(strings.ToLower(f))] {
			return fmt.Errorf("unknown -fig token %q (want %s)", f, strings.Join(figNames, "|"))
		}
	}
	return nil
}

// runCampaignSpec executes one declarative campaign (either mode) through
// the engine's mode-runner registry and prints a short summary — the
// single-campaign counterpart of the figure suite.
func runCampaignSpec(spec engine.CampaignSpec, ds *dataset.Dataset) error {
	fmt.Printf("campaign %s: mode=%s policy=%s\n", spec.Name, spec.Mode, spec.Policy.Name)
	v, err := engine.RunCampaignSpec(context.Background(), spec, ds, nil)
	if err != nil {
		return err
	}
	switch res := v.(type) {
	case *engine.Trajectory:
		n := res.Iterations()
		fmt.Printf("%d iterations, stop=%s\n", n, res.Reason)
		if n > 0 {
			fmt.Printf("final RMSE cost=%.4g mem=%.4g; cumulative cost=%.4g node-hours, regret=%.4g\n",
				res.CostRMSE[n-1], res.MemRMSE[n-1], res.CumCost[n-1], res.CumRegret[n-1])
		}
	case *online.Result:
		fmt.Printf("%d experiments, stop=%s\n", len(res.Jobs), res.Reason)
		if n := len(res.CumCost); n > 0 {
			fmt.Printf("spent %.4g node-hours (regret %.4g)\n", res.CumCost[n-1], res.CumRegret[n-1])
		}
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("al-eval: ")

	var o options
	data := flag.String("data", "dataset.csv", "dataset CSV (from amr-gen)")
	generate := flag.Bool("generate", false, "regenerate the dataset instead of loading it")
	flag.StringVar(&o.spec, "spec", "", "campaign spec JSON to run instead of the figure suite")
	flag.StringVar(&o.fig, "fig", "all", "what to run: table1,fig1,fig2,fig3,fig4,violations,online,batch,ablations (or kernels,log2p,base,memlimit,cadence,surrogate,weighted individually), all")
	flag.IntVar(&o.partitions, "partitions", 10, "random partitions per configuration")
	flag.IntVar(&o.iters, "iters", 150, "AL iterations per trajectory")
	csvDir := flag.String("csv", "", "directory for CSV series output")
	seed := flag.Int64("seed", 1, "seed")
	flag.IntVar(&o.workers, "workers", 0, "parallel trajectories (0 = GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while the evaluation runs")
	traceOut := flag.String("trace-out", "", "write span trace events as JSONL to this file")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "al-eval: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	bundle, err := obs.Boot(*metricsAddr, *traceOut)
	if err != nil {
		log.Fatalf("observability setup: %v", err)
	}
	defer bundle.Close()

	var ds *dataset.Dataset
	var loadErr error
	if *generate {
		t0 := time.Now()
		ds, err = dataset.Generate(dataset.GenConfig{Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("regenerated dataset: %d jobs in %v\n\n", ds.Len(), time.Since(t0).Round(time.Millisecond))
	} else if o.spec == "" {
		ds, loadErr = dataset.LoadFile(*data)
	}

	if o.spec != "" {
		var spec engine.CampaignSpec
		var serr error
		if *generate {
			// The dataset was just regenerated in-process; only the spec
			// file needs loading.
			spec, serr = engine.LoadCampaignSpec(o.spec)
		} else {
			spec, ds, serr = engine.LoadSpecForRun(o.spec, *data)
		}
		if serr != nil {
			log.Fatal(serr)
		}
		if err := runCampaignSpec(spec, ds); err != nil {
			log.Fatal(err)
		}
		return
	}
	if ds == nil {
		log.Fatalf("loading dataset: %v (generate one with amr-gen, or pass -generate)", loadErr)
	}

	opts := experiments.Options{
		Dataset:       ds,
		Out:           os.Stdout,
		CSVDir:        *csvDir,
		Partitions:    o.partitions,
		MaxIterations: o.iters,
		Workers:       o.workers,
		Seed:          *seed,
	}

	run := func(name string, fn func() error) {
		t0 := time.Now()
		fmt.Printf("\n===== %s =====\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	want := map[string]bool{}
	for _, f := range strings.Split(o.fig, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]

	if all || want["table1"] {
		run("Table I", func() error { _, err := experiments.TableI(opts); return err })
	}
	if all || want["fig1"] {
		run("Fig 1 (refinement progression)", func() error {
			_, err := experiments.Fig1(opts, experiments.Fig1Config{})
			return err
		})
	}
	if all || want["fig2"] {
		run("Fig 2 (selection cost distributions)", func() error { _, err := experiments.Fig2(opts); return err })
	}
	if all || want["fig3"] {
		run("Fig 3 (cumulative regret)", func() error { _, err := experiments.Fig3(opts); return err })
	}
	if all || want["fig4"] {
		run("Fig 4 (error trade-offs)", func() error { _, err := experiments.Fig4(opts); return err })
	}
	if all || want["violations"] {
		run("§V-C violation timeline", func() error { _, err := experiments.ViolationTimeline(opts); return err })
	}
	if all || want["online"] {
		run("online-mode study", func() error {
			_, err := experiments.OnlineStudy(opts, 20, 3)
			return err
		})
	}
	if all || want["batch"] {
		run("batch-mode AL study", func() error {
			_, err := experiments.BatchSizeStudy(opts, nil, 64)
			return err
		})
	}
	if all || want["ablations"] || want["kernels"] {
		run("kernel ablation", func() error { _, err := experiments.KernelAblation(opts); return err })
	}
	if all || want["ablations"] || want["log2p"] {
		run("log2(p) ablation", func() error { _, err := experiments.Log2PAblation(opts); return err })
	}
	if all || want["ablations"] || want["base"] {
		run("goodness-base ablation", func() error { _, err := experiments.GoodnessBaseAblation(opts); return err })
	}
	if all || want["ablations"] || want["memlimit"] {
		run("memory-limit sensitivity", func() error { _, err := experiments.MemLimitSensitivity(opts); return err })
	}
	if all || want["ablations"] || want["cadence"] {
		run("hyperopt cadence ablation", func() error { _, err := experiments.HyperoptCadenceAblation(opts); return err })
	}
	if all || want["ablations"] || want["surrogate"] {
		run("surrogate ablation", func() error { _, err := experiments.SurrogateAblation(opts); return err })
	}
	if all || want["ablations"] || want["weighted"] {
		run("weighted-error study", func() error { _, err := experiments.WeightedErrorStudy(opts); return err })
	}

	if t := report.ObsSummary(obs.Default()); t != nil {
		fmt.Println("\nobservability summary")
		if err := t.Write(os.Stdout); err != nil {
			log.Print(err)
		}
	}
}
