// Command al-eval regenerates the paper's evaluation: Table I, Figures 1-4,
// the §V-C violation analysis, and the §V-D ablations.
//
// Usage:
//
//	al-eval -data dataset.csv -fig all [-partitions 10] [-iters 150]
//	        [-csv out/] [-seed 1] [-metrics-addr 127.0.0.1:9090]
//	        [-trace-out trace.jsonl]
//
// With -generate, the dataset is regenerated in-process instead of loaded.
// -metrics-addr serves live Prometheus metrics and pprof endpoints for the
// duration of the evaluation — useful for profiling the long ablation runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/experiments"
	"alamr/internal/obs"
	"alamr/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("al-eval: ")

	data := flag.String("data", "dataset.csv", "dataset CSV (from amr-gen)")
	generate := flag.Bool("generate", false, "regenerate the dataset instead of loading it")
	fig := flag.String("fig", "all", "what to run: table1,fig1,fig2,fig3,fig4,violations,online,batch,ablations (or kernels,log2p,base,memlimit,cadence,surrogate,weighted individually), all")
	partitions := flag.Int("partitions", 10, "random partitions per configuration")
	iters := flag.Int("iters", 150, "AL iterations per trajectory")
	csvDir := flag.String("csv", "", "directory for CSV series output")
	seed := flag.Int64("seed", 1, "seed")
	workers := flag.Int("workers", 0, "parallel trajectories (0 = GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while the evaluation runs")
	traceOut := flag.String("trace-out", "", "write span trace events as JSONL to this file")
	flag.Parse()

	bundle, err := obs.Boot(*metricsAddr, *traceOut)
	if err != nil {
		log.Fatalf("observability setup: %v", err)
	}
	defer bundle.Close()

	var ds *dataset.Dataset
	if *generate {
		t0 := time.Now()
		ds, err = dataset.Generate(dataset.GenConfig{Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("regenerated dataset: %d jobs in %v\n\n", ds.Len(), time.Since(t0).Round(time.Millisecond))
	} else {
		ds, err = dataset.LoadFile(*data)
		if err != nil {
			log.Fatalf("loading dataset: %v (generate one with amr-gen, or pass -generate)", err)
		}
	}

	opts := experiments.Options{
		Dataset:       ds,
		Out:           os.Stdout,
		CSVDir:        *csvDir,
		Partitions:    *partitions,
		MaxIterations: *iters,
		Workers:       *workers,
		Seed:          *seed,
	}

	run := func(name string, fn func() error) {
		t0 := time.Now()
		fmt.Printf("\n===== %s =====\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("[%s done in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]

	if all || want["table1"] {
		run("Table I", func() error { _, err := experiments.TableI(opts); return err })
	}
	if all || want["fig1"] {
		run("Fig 1 (refinement progression)", func() error {
			_, err := experiments.Fig1(opts, experiments.Fig1Config{})
			return err
		})
	}
	if all || want["fig2"] {
		run("Fig 2 (selection cost distributions)", func() error { _, err := experiments.Fig2(opts); return err })
	}
	if all || want["fig3"] {
		run("Fig 3 (cumulative regret)", func() error { _, err := experiments.Fig3(opts); return err })
	}
	if all || want["fig4"] {
		run("Fig 4 (error trade-offs)", func() error { _, err := experiments.Fig4(opts); return err })
	}
	if all || want["violations"] {
		run("§V-C violation timeline", func() error { _, err := experiments.ViolationTimeline(opts); return err })
	}
	if all || want["online"] {
		run("online-mode study", func() error {
			_, err := experiments.OnlineStudy(opts, 20, 3)
			return err
		})
	}
	if all || want["batch"] {
		run("batch-mode AL study", func() error {
			_, err := experiments.BatchSizeStudy(opts, nil, 64)
			return err
		})
	}
	if all || want["ablations"] || want["kernels"] {
		run("kernel ablation", func() error { _, err := experiments.KernelAblation(opts); return err })
	}
	if all || want["ablations"] || want["log2p"] {
		run("log2(p) ablation", func() error { _, err := experiments.Log2PAblation(opts); return err })
	}
	if all || want["ablations"] || want["base"] {
		run("goodness-base ablation", func() error { _, err := experiments.GoodnessBaseAblation(opts); return err })
	}
	if all || want["ablations"] || want["memlimit"] {
		run("memory-limit sensitivity", func() error { _, err := experiments.MemLimitSensitivity(opts); return err })
	}
	if all || want["ablations"] || want["cadence"] {
		run("hyperopt cadence ablation", func() error { _, err := experiments.HyperoptCadenceAblation(opts); return err })
	}
	if all || want["ablations"] || want["surrogate"] {
		run("surrogate ablation", func() error { _, err := experiments.SurrogateAblation(opts); return err })
	}
	if all || want["ablations"] || want["weighted"] {
		run("weighted-error study", func() error { _, err := experiments.WeightedErrorStudy(opts); return err })
	}

	if t := report.ObsSummary(obs.Default()); t != nil {
		fmt.Println("\nobservability summary")
		if err := t.Write(os.Stdout); err != nil {
			log.Print(err)
		}
	}
}
