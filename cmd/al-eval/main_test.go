package main

import (
	"strings"
	"testing"
)

func validOptions() options {
	return options{fig: "all", partitions: 10, iters: 150}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring; "" means valid
	}{
		{"defaults", func(o *options) {}, ""},
		{"every token ok", func(o *options) { o.fig = strings.Join(figNames, ",") }, ""},
		{"mixed case and spaces ok", func(o *options) { o.fig = "Table1, FIG3 ,weighted" }, ""},
		{"spec file skips suite checks", func(o *options) { o.spec = "campaign.json"; o.partitions = 0 }, ""},
		{"zero partitions", func(o *options) { o.partitions = 0 }, "-partitions must be at least 1"},
		{"zero iters", func(o *options) { o.iters = 0 }, "-iters must be at least 1"},
		{"negative workers", func(o *options) { o.workers = -1 }, "-workers must be non-negative"},
		{"unknown fig token", func(o *options) { o.fig = "table1,fig9" }, `unknown -fig token "fig9"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := validOptions()
			tc.mutate(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}
