// Command amr-gen regenerates the paper's measurement campaign: 600
// simulated FORESTCLAW shock-bubble jobs on the modeled Edison machine,
// written as a CSV dataset, with the Table I summary printed.
//
// Usage:
//
//	amr-gen [-o dataset.csv] [-seed 42] [-jobs 600] [-unique 525]
//	        [-refnx 128] [-tend 0.3] [-subcycle]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"alamr/internal/dataset"
	"alamr/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("amr-gen: ")

	out := flag.String("o", "dataset.csv", "output CSV path (empty to skip writing)")
	seed := flag.Int64("seed", 42, "campaign seed")
	jobs := flag.Int("jobs", 600, "total jobs (paper: 600)")
	unique := flag.Int("unique", 525, "distinct feature combinations (paper: 525)")
	refnx := flag.Int("refnx", 128, "reference-solution resolution")
	tend := flag.Float64("tend", 0.3, "reference-simulation end time")
	snaps := flag.Int("snaps", 12, "reference snapshots")
	subcycle := flag.Bool("subcycle", false, "emulate level-subcycled time stepping")
	flag.Parse()

	t0 := time.Now()
	ds, err := dataset.Generate(dataset.GenConfig{
		Seed:      *seed,
		NumJobs:   *jobs,
		NumUnique: *unique,
		RefNx:     *refnx,
		RefTEnd:   *tend,
		RefSnaps:  *snaps,
		Subcycle:  *subcycle,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d jobs (%d unique combos) in %v\n\n", ds.Len(), ds.UniqueCombos(), time.Since(t0).Round(time.Millisecond))

	if _, err := experiments.TableI(experiments.Options{Dataset: ds, Out: os.Stdout}); err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		if err := ds.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
